package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Histogram is the shared power-of-two latency histogram from the
// telemetry package (it originated here and was generalized); the alias
// keeps the serve API unchanged.
type Histogram = telemetry.Histogram

// metrics is the server's internal counter set. All fields are atomics;
// the hot path never takes a lock.
type metrics struct {
	start time.Time

	arrivals  atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64 // arrivals after Close
	expired   atomic.Int64 // dropped at assembly, deadline passed
	completed atomic.Int64
	failed    atomic.Int64
	retries   atomic.Int64

	batches      atomic.Int64
	batchSamples atomic.Int64

	maxQueueDepth atomic.Int64

	latency Histogram
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

func (m *metrics) observeQueueDepth(depth int) {
	d := int64(depth)
	for {
		cur := m.maxQueueDepth.Load()
		if d <= cur || m.maxQueueDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// ReplicaStats is one replica's snapshot row.
type ReplicaStats struct {
	ID       int
	Batches  int64
	Samples  int64
	Failures int64
	// Utilization is the fraction of wall time the replica spent
	// inferring (including modeled service time).
	Utilization float64
}

// Snapshot is a consistent-enough point-in-time view of the server's
// metrics (counters are read individually; cross-counter sums can be off
// by in-flight requests while the server is running, and are exact after
// Close).
type Snapshot struct {
	Elapsed time.Duration

	Arrivals  int64
	Completed int64
	Shed      int64
	Rejected  int64
	Expired   int64
	Failed    int64
	Retries   int64

	// Throughput is completed requests per second of elapsed wall time.
	Throughput float64
	// MeanBatch is the average dispatched batch size — the dynamic
	// batcher's coalescing factor.
	MeanBatch float64
	Batches   int64

	MeanLatency   time.Duration
	P50, P95, P99 time.Duration

	QueueDepth    int
	MaxQueueDepth int

	Replicas []ReplicaStats
}

// Snapshot captures the server's metrics.
func (s *Server) Snapshot() Snapshot {
	m := s.metrics
	elapsed := time.Since(m.start)
	snap := Snapshot{
		Elapsed:       elapsed,
		Arrivals:      m.arrivals.Load(),
		Completed:     m.completed.Load(),
		Shed:          m.shed.Load(),
		Rejected:      m.rejected.Load(),
		Expired:       m.expired.Load(),
		Failed:        m.failed.Load(),
		Retries:       m.retries.Load(),
		Batches:       m.batches.Load(),
		MeanLatency:   m.latency.Mean(),
		P50:           m.latency.Quantile(0.50),
		P95:           m.latency.Quantile(0.95),
		P99:           m.latency.Quantile(0.99),
		QueueDepth:    len(s.queue),
		MaxQueueDepth: int(m.maxQueueDepth.Load()),
	}
	if elapsed > 0 {
		snap.Throughput = float64(snap.Completed) / elapsed.Seconds()
	}
	if snap.Batches > 0 {
		snap.MeanBatch = float64(m.batchSamples.Load()) / float64(snap.Batches)
	}
	for _, r := range s.pool.all {
		util := 0.0
		if elapsed > 0 {
			util = float64(r.busyNs.Load()) / float64(elapsed.Nanoseconds())
			if util > 1 {
				util = 1
			}
		}
		snap.Replicas = append(snap.Replicas, ReplicaStats{
			ID: r.id, Batches: r.batches.Load(), Samples: r.samples.Load(),
			Failures: r.failures.Load(), Utilization: util,
		})
	}
	return snap
}

// RegisterMetrics re-exports the server's live counters, queue gauges,
// per-replica stats, and the latency histogram through a telemetry
// registry, so a serving tier scrapes as a normal Prometheus target
// (reg.Handler() serves the text endpoint). Counters are read at export
// time — no double bookkeeping on the hot path.
func (s *Server) RegisterMetrics(reg *telemetry.Registry) {
	m := s.metrics
	counter := func(name string, v *atomic.Int64, labels ...telemetry.Label) {
		reg.CounterFunc(name, func() float64 { return float64(v.Load()) }, labels...)
	}
	reg.SetHelp("msa_serve_requests_total", "requests by terminal outcome")
	counter("msa_serve_requests_total", &m.arrivals, telemetry.Label{Key: "outcome", Value: "arrived"})
	counter("msa_serve_requests_total", &m.completed, telemetry.Label{Key: "outcome", Value: "completed"})
	counter("msa_serve_requests_total", &m.shed, telemetry.Label{Key: "outcome", Value: "shed"})
	counter("msa_serve_requests_total", &m.rejected, telemetry.Label{Key: "outcome", Value: "rejected"})
	counter("msa_serve_requests_total", &m.expired, telemetry.Label{Key: "outcome", Value: "expired"})
	counter("msa_serve_requests_total", &m.failed, telemetry.Label{Key: "outcome", Value: "failed"})
	counter("msa_serve_retries_total", &m.retries)
	counter("msa_serve_batches_total", &m.batches)
	counter("msa_serve_batch_samples_total", &m.batchSamples)
	reg.GaugeFunc("msa_serve_queue_depth", func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("msa_serve_queue_depth_max", func() float64 { return float64(m.maxQueueDepth.Load()) })
	reg.AttachHistogram("msa_serve_latency_seconds", &m.latency)
	for _, r := range s.pool.all {
		id := telemetry.Label{Key: "replica", Value: strconv.Itoa(r.id)}
		counter("msa_serve_replica_batches_total", &r.batches, id)
		counter("msa_serve_replica_samples_total", &r.samples, id)
		counter("msa_serve_replica_failures_total", &r.failures, id)
	}
}

// String renders the snapshot as a small report.
func (sn Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed %.2fs  throughput %.1f req/s  mean batch %.2f\n",
		sn.Elapsed.Seconds(), sn.Throughput, sn.MeanBatch)
	fmt.Fprintf(&b, "requests: %d arrived, %d completed, %d shed, %d expired, %d failed (%d retries)\n",
		sn.Arrivals, sn.Completed, sn.Shed, sn.Expired, sn.Failed, sn.Retries)
	fmt.Fprintf(&b, "latency: mean %s  p50 %s  p95 %s  p99 %s\n",
		sn.MeanLatency.Round(time.Microsecond), sn.P50, sn.P95, sn.P99)
	fmt.Fprintf(&b, "queue: depth %d (max %d)\n", sn.QueueDepth, sn.MaxQueueDepth)
	for _, r := range sn.Replicas {
		fmt.Fprintf(&b, "  replica %d: %d batches / %d samples, %d failures, %.0f%% busy\n",
			r.ID, r.Batches, r.Samples, r.Failures, 100*r.Utilization)
	}
	return b.String()
}
