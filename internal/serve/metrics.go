package serve

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a lock-cheap latency histogram: power-of-two microsecond
// buckets updated with a single atomic add per observation. Quantiles are
// reconstructed from the bucket counts (resolution is one octave — ample
// for p50/p95/p99 reporting and regression tracking).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

const histBuckets = 48 // bucket i covers [2^(i-1), 2^i) µs — spans ns to years

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	idx := bits.Len64(uint64(us))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average observed latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile returns the latency at quantile q in [0,1], estimated as the
// geometric midpoint of the containing bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n-1)) + 1
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			// Bucket i covers [2^(i-1), 2^i) µs; midpoint ≈ 1.5·2^(i-1).
			mid := 3 * (int64(1) << uint(i-1)) / 2
			return time.Duration(mid) * time.Microsecond
		}
	}
	return time.Duration(3*(int64(1)<<uint(histBuckets-2))/2) * time.Microsecond
}

// metrics is the server's internal counter set. All fields are atomics;
// the hot path never takes a lock.
type metrics struct {
	start time.Time

	arrivals  atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64 // arrivals after Close
	expired   atomic.Int64 // dropped at assembly, deadline passed
	completed atomic.Int64
	failed    atomic.Int64
	retries   atomic.Int64

	batches      atomic.Int64
	batchSamples atomic.Int64

	maxQueueDepth atomic.Int64

	latency Histogram
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

func (m *metrics) observeQueueDepth(depth int) {
	d := int64(depth)
	for {
		cur := m.maxQueueDepth.Load()
		if d <= cur || m.maxQueueDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// ReplicaStats is one replica's snapshot row.
type ReplicaStats struct {
	ID       int
	Batches  int64
	Samples  int64
	Failures int64
	// Utilization is the fraction of wall time the replica spent
	// inferring (including modeled service time).
	Utilization float64
}

// Snapshot is a consistent-enough point-in-time view of the server's
// metrics (counters are read individually; cross-counter sums can be off
// by in-flight requests while the server is running, and are exact after
// Close).
type Snapshot struct {
	Elapsed time.Duration

	Arrivals  int64
	Completed int64
	Shed      int64
	Rejected  int64
	Expired   int64
	Failed    int64
	Retries   int64

	// Throughput is completed requests per second of elapsed wall time.
	Throughput float64
	// MeanBatch is the average dispatched batch size — the dynamic
	// batcher's coalescing factor.
	MeanBatch float64
	Batches   int64

	MeanLatency   time.Duration
	P50, P95, P99 time.Duration

	QueueDepth    int
	MaxQueueDepth int

	Replicas []ReplicaStats
}

// Snapshot captures the server's metrics.
func (s *Server) Snapshot() Snapshot {
	m := s.metrics
	elapsed := time.Since(m.start)
	snap := Snapshot{
		Elapsed:       elapsed,
		Arrivals:      m.arrivals.Load(),
		Completed:     m.completed.Load(),
		Shed:          m.shed.Load(),
		Rejected:      m.rejected.Load(),
		Expired:       m.expired.Load(),
		Failed:        m.failed.Load(),
		Retries:       m.retries.Load(),
		Batches:       m.batches.Load(),
		MeanLatency:   m.latency.Mean(),
		P50:           m.latency.Quantile(0.50),
		P95:           m.latency.Quantile(0.95),
		P99:           m.latency.Quantile(0.99),
		QueueDepth:    len(s.queue),
		MaxQueueDepth: int(m.maxQueueDepth.Load()),
	}
	if elapsed > 0 {
		snap.Throughput = float64(snap.Completed) / elapsed.Seconds()
	}
	if snap.Batches > 0 {
		snap.MeanBatch = float64(m.batchSamples.Load()) / float64(snap.Batches)
	}
	for _, r := range s.pool.all {
		util := 0.0
		if elapsed > 0 {
			util = float64(r.busyNs.Load()) / float64(elapsed.Nanoseconds())
			if util > 1 {
				util = 1
			}
		}
		snap.Replicas = append(snap.Replicas, ReplicaStats{
			ID: r.id, Batches: r.batches.Load(), Samples: r.samples.Load(),
			Failures: r.failures.Load(), Utilization: util,
		})
	}
	return snap
}

// String renders the snapshot as a small report.
func (sn Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed %.2fs  throughput %.1f req/s  mean batch %.2f\n",
		sn.Elapsed.Seconds(), sn.Throughput, sn.MeanBatch)
	fmt.Fprintf(&b, "requests: %d arrived, %d completed, %d shed, %d expired, %d failed (%d retries)\n",
		sn.Arrivals, sn.Completed, sn.Shed, sn.Expired, sn.Failed, sn.Retries)
	fmt.Fprintf(&b, "latency: mean %s  p50 %s  p95 %s  p99 %s\n",
		sn.MeanLatency.Round(time.Microsecond), sn.P50, sn.P95, sn.P99)
	fmt.Fprintf(&b, "queue: depth %d (max %d)\n", sn.QueueDepth, sn.MaxQueueDepth)
	for _, r := range sn.Replicas {
		fmt.Fprintf(&b, "  replica %d: %d batches / %d samples, %d failures, %.0f%% busy\n",
			r.ID, r.Batches, r.Samples, r.Failures, 100*r.Utilization)
	}
	return b.String()
}
