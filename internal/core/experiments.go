package core

import (
	"fmt"
	"math/rand"
	"sort"
)

// newRNG is a tiny helper for deterministic model construction inside
// experiments.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Experiment is a runnable entry of the harness.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) Result
}

// Experiments returns the full E1–E13 index in order.
func Experiments() []Experiment {
	return []Experiment{
		{"e1", "Table I: DEEP DAM specifications", func(Scale) Result { return E1TableI() }},
		{"e2", "JUWELS module aggregates", func(Scale) Result { return E2JUWELS() }},
		{"e3", "ResNet/BigEarthNet distributed scaling", E3ResNetScaling},
		{"e4", "Accuracy vs workers", E4AccuracyVsWorkers},
		{"e5", "96 vs 128 GPUs", func(Scale) Result { return E5Scale128() }},
		{"e6", "COVID-Net chest X-ray screening", E6CovidNet},
		{"e7", "GRU time-series imputation", E7GRUImputation},
		{"e8", "Quantum SVM ensembles", E8QuantumSVM},
		{"e9", "GCE / allreduce algorithms", E9Allreduce},
		{"e10", "Modular vs monolithic scheduling", E10Scheduler},
		{"e11", "Parallel cascade SVM", E11CascadeSVM},
		{"e12", "SSSM striping and NAM sharing", func(Scale) Result { return E12Storage() }},
		{"e13", "Workload-module assignment", func(Scale) Result { return E13ModuleAssignment() }},
		// Extensions beyond the paper's figure set: workflows the text
		// describes without reporting numbers (see EXPERIMENTS.md).
		{"e14", "Spark/MLlib analytics on the DAM", E14SparkAnalytics},
		{"e15", "Autoencoder RS compression", E15Autoencoder},
		{"e16", "ARDS early-warning classifier", E16EarlyWarning},
		{"e17", "Inference scale-out on the ESB", E17InferenceScaleOut},
		{"e18", "NAM checkpoint/restart", func(Scale) Result { return E18Checkpoint() }},
		{"e19", "Model comparison sweep", E19ModelComparison},
		{"e20", "Annealer feature selection", E20FeatureSelection},
		{"e21", "Low-rank + sparse anomaly detection", E21AnomalyDetection},
	}
}

// RunExperiment executes one experiment by id (case-sensitive, e.g. "e3").
func RunExperiment(id string, scale Scale) (Result, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(scale), nil
		}
	}
	return Result{}, fmt.Errorf("core: unknown experiment %q (known: %v)", id, ExperimentIDs())
}

// ExperimentIDs lists the known experiment ids in order.
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// MetricsSorted renders a result's metrics deterministically (for logs).
func MetricsSorted(r Result) string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%.6g\n", k, r.Metrics[k])
	}
	return out
}
