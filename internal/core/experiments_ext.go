package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/mapreduce"
	"repro/internal/msa"
	"repro/internal/nn"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// E14SparkAnalytics reproduces the Spark/MLlib-on-DAM workflow of §III-B:
// random-forest classification of RS features (the "robust classifiers
// often used", footnote 37) and k-means exploration, executed on the
// miniature map-reduce engine, plus the placement argument for why this
// workload belongs on the large-memory DAM.
func E14SparkAnalytics(scale Scale) Result {
	n := 300
	trees := 15
	if scale == Full {
		n = 1200
		trees = 40
	}
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: n + 100, Seed: 91,
		MaxLabels: 1, Classes: 3, Size: 6, Bands: 3, Noise: 1.0})
	flat, labels := ds.FlattenFeatures()
	rows := make([]mapreduce.Row, flat.Dim(0))
	for i := range rows {
		rows[i] = append(append(mapreduce.Row(nil), flat.Row(i)...), float64(labels[i]))
	}
	train, test := rows[:n], rows[n:]

	eng := mapreduce.NewEngine(4)
	forest := mapreduce.TrainForest(eng, train, 3, mapreduce.ForestConfig{Trees: trees, Seed: 92})
	accF := forest.Accuracy(test)
	tree := mapreduce.TrainTree(train, 3, mapreduce.TreeConfig{Seed: 92})
	correct := 0
	for _, r := range test {
		if tree.Predict(r[:len(r)-1]) == int(r[len(r)-1]) {
			correct++
		}
	}
	accT := float64(correct) / float64(len(test))

	tb := NewTable("MLlib-style classifiers on RS features (meas, map-reduce engine)",
		"classifier", "test accuracy")
	tb.Add("single CART tree", fmt.Sprintf("%.3f", accT))
	tb.Add(fmt.Sprintf("random forest (%d trees)", trees), fmt.Sprintf("%.3f", accF))

	// k-means exploration of the unlabeled features.
	feat := make([]mapreduce.Row, len(train))
	for i, r := range train {
		feat[i] = r[:len(r)-1]
	}
	km := mapreduce.KMeans(eng, feat, 3, 30, 93)
	kmTable := NewTable("k-means on the same features (meas)",
		"k", "iterations", "inertia")
	kmTable.Add("3", fmt.Sprint(km.Iterations), fmt.Sprintf("%.1f", km.Inertia))

	// Placement: the memory-bound analytics workload belongs on the DAM
	// (§III-B), quantified with the perfmodel.
	deep := msa.DEEP()
	w := perfmodel.Workload{Name: "spark-rf", Class: perfmodel.ClassHPDA,
		Flops: 1e14, Bytes: 8e13, ParallelFrac: 0.9, CommElems: 10_000, Steps: 50, MemoryGB: 300}
	best, all := perfmodel.BestModule(w, deep, 16)
	place := NewTable("Placement of the analytics job (model, 16 nodes)",
		"module", "time s")
	for _, name := range []string{"deep-cm", "deep-esb", "deep-dam"} {
		cell := fmt.Sprintf("%.0f", all[name].Seconds)
		if deep.ModuleByName(name) == best {
			cell = "*" + cell
		}
		place.Add(name, cell)
	}

	return Result{
		ID: "E14", Title: "Spark/MLlib analytics on the DAM (§III-B)",
		Report: tb.String() + "\n" + kmTable.String() + "\n" + place.String(),
		Metrics: map[string]float64{
			"acc_forest":  accF,
			"acc_tree":    accT,
			"km_inertia":  km.Inertia,
			"dam_is_best": boolMetric(best.Kind == msa.DataAnalytics),
		},
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// E15Autoencoder reproduces the non-linear RS compression study (Haut et
// al., ref [7]): a dense autoencoder compresses multispectral signatures
// and is compared against PCA at the same code size and against the
// column-mean baseline.
func E15Autoencoder(scale Scale) Result {
	n, epochs := 300, 800
	if scale == Full {
		n, epochs = 1500, 1500
	}
	// Per-pixel spectra: flatten patches to pixel rows of `bands` values
	// with class structure. A tanh radiometric saturation (real optical
	// sensors compress high radiances) makes the manifold non-linear —
	// the regime where the AE's advantage over PCA exists.
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: 32, Seed: 95,
		MaxLabels: 2, Classes: 6, Size: 8, Bands: 6, Noise: 0.4})
	bands := 6
	// Sample n pixels across patches: each row is one pixel's spectrum.
	rng := rand.New(rand.NewSource(96))
	x := tensor.New(n, bands)
	for i := 0; i < n; i++ {
		p := rng.Intn(32)
		py, px := rng.Intn(8), rng.Intn(8)
		for b := 0; b < bands; b++ {
			v := ds.X.At(p, b, py, px)
			x.Set(2*math.Tanh(v/2), i, b)
		}
	}

	const code = 2
	ae := nn.NewAutoencoder(rand.New(rand.NewSource(97)), bands, 24, code)
	finalLoss := nn.TrainAutoencoder(ae, x, epochs, 3e-3)
	aeRecon := ae.Reconstruct(x)
	aeMSE := mseOf(aeRecon, x)

	comps, means := tensor.PCA(x, code, 50, rand.New(rand.NewSource(98)))
	pcaRecon := tensor.PCAReconstruct(tensor.PCAProject(x, comps, means), comps, means)
	pcaMSE := mseOf(pcaRecon, x)

	meanOnly := tensor.New(x.Shape()...)
	for i := 0; i < n; i++ {
		copy(meanOnly.Row(i), means.Data())
	}
	meanMSE := mseOf(meanOnly, x)

	tb := NewTable(fmt.Sprintf("RS spectra compression to %d dims (meas, %d pixels × %d bands)", code, n, bands),
		"method", "reconstruction MSE", "compression")
	tb.Add("column mean (0 dims)", fmt.Sprintf("%.4f", meanMSE), "∞")
	tb.Add(fmt.Sprintf("PCA(%d)", code), fmt.Sprintf("%.4f", pcaMSE), fmt.Sprintf("%.1fx", float64(bands)/code))
	tb.Add(fmt.Sprintf("autoencoder(%d)", code), fmt.Sprintf("%.4f", aeMSE), fmt.Sprintf("%.1fx", float64(bands)/code))

	return Result{
		ID: "E15", Title: "Autoencoder RS data compression (§III-B, ref [7])",
		Report: tb.String(),
		Metrics: map[string]float64{
			"mse_mean": meanMSE,
			"mse_pca":  pcaMSE,
			"mse_ae":   aeMSE,
			"ae_loss":  finalLoss,
		},
	}
}

func mseOf(a, b *tensor.Tensor) float64 {
	d := tensor.Sub(a, b)
	return tensor.Dot(d, d) / float64(d.Size())
}

// E16EarlyWarning builds the §IV-B end goal — "an algorithmic approach
// that provides early warning [of ARDS] and informs medical staff" — as a
// classifier over sliding vital-sign windows: predict whether onset
// occurs within the next 6 hours. A GRU encoder is compared against a
// linear model on the flattened window (the classical scoring-rule
// baseline).
func E16EarlyWarning(scale Scale) Result {
	patients, epochs := 60, 60
	if scale == Full {
		patients, epochs = 300, 150
	}
	ds := data.GenICU(data.ICUConfig{Patients: patients, Steps: 40, Seed: 101, ARDSFraction: 0.5})
	const window, lead = 8, 6
	x, labels := ds.EarlyWarningWindows(window, lead, 2)
	n := x.Dim(0)
	split := data.TrainValSplit(n, 0.3, 102)

	pos := 0
	for _, l := range labels {
		pos += l
	}

	featDim := x.Dim(2)
	gru := nn.NewSequential(
		nn.NewGRU(rand.New(rand.NewSource(103)), "g", featDim, 16),
		&nn.LastTimestep{},
		nn.NewDense(rand.New(rand.NewSource(104)), "head", 16, 2),
	)
	linear := nn.NewSequential(
		&nn.Flatten{},
		nn.NewDense(rand.New(rand.NewSource(105)), "lin", window*featDim, 2),
	)

	trainClassifier := func(m *nn.Sequential, lr float64) (recall, precision, acc float64) {
		opt := nn.NewAdam()
		loss := nn.SoftmaxCrossEntropy{}
		oneHot := nn.OneHot(labels, 2)
		for e := 0; e < epochs; e++ {
			bx := data.SelectRows(x, split.Train)
			by := data.SelectRows(oneHot, split.Train)
			m.ZeroGrads()
			out := m.Forward(bx, true)
			_, grad := loss.Forward(out, by)
			m.Backward(grad)
			nn.ClipGradNorm(m.Params(), 5)
			opt.Step(m.Params(), lr)
		}
		vx := data.SelectRows(x, split.Val)
		vl := data.SelectLabels(labels, split.Val)
		logits := m.Forward(vx, false)
		cm := nn.ConfusionMatrix(logits, vl, 2)
		recall = nn.PerClassRecall(cm)[1]
		precision = nn.PerClassPrecision(cm)[1]
		acc = nn.Accuracy(logits, vl)
		return recall, precision, acc
	}

	gRec, gPrec, gAcc := trainClassifier(gru, 5e-3)
	lRec, lPrec, lAcc := trainClassifier(linear, 1e-2)

	tb := NewTable(fmt.Sprintf("ARDS early warning: onset within %dh predicted from %dh windows (meas, %d windows, %.0f%% positive)",
		lead, window, n, 100*float64(pos)/float64(n)),
		"model", "recall(onset)", "precision(onset)", "accuracy")
	tb.Add("linear on flattened window", fmt.Sprintf("%.3f", lRec), fmt.Sprintf("%.3f", lPrec), fmt.Sprintf("%.3f", lAcc))
	tb.Add("GRU(16) encoder", fmt.Sprintf("%.3f", gRec), fmt.Sprintf("%.3f", gPrec), fmt.Sprintf("%.3f", gAcc))

	return Result{
		ID: "E16", Title: "ARDS early-warning classifier (§IV-B goal)",
		Report: tb.String(),
		Metrics: map[string]float64{
			"gru_recall": gRec, "gru_precision": gPrec, "gru_acc": gAcc,
			"lin_recall": lRec, "lin_precision": lPrec, "lin_acc": lAcc,
			"positive_frac": float64(pos) / float64(n),
		},
	}
}
