package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/data"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/qa"
	"repro/internal/svm"
)

// E3ResNetScaling reproduces Fig. 3 (middle right): distributed ResNet
// training speed-up. Real training runs at small worker counts on the
// goroutine runtime (meas:); the calibrated DL scaling model projects to
// the paper's 96 and 128 GPUs (model:), including the fp16 ablation.
func E3ResNetScaling(scale Scale) Result {
	samples, epochs := 48, 1
	workersMeasured := []int{1, 2, 4}
	if scale == Full {
		samples, epochs = 256, 2
		workersMeasured = []int{1, 2, 4, 8}
	}
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: samples, Seed: 11})
	split := data.TrainValSplit(samples, 0.25, 12)

	tb := NewTable(fmt.Sprintf("ResNet/BigEarthNet scaling (Fig. 3 middle right; meas rows on %d host core(s): goroutine ranks time-share, so measured speedup reflects sync overhead, not parallel compute)", runtime.NumCPU()),
		"workers", "epoch time", "speedup", "efficiency", "source")
	metrics := map[string]float64{}

	var base float64
	for _, p := range workersMeasured {
		cfg := DDPConfig{Workers: p, Epochs: epochs, Batch: 4, BaseLR: 0.01,
			Warmup: 5, Algo: mpi.AlgoRing, Seed: 31}
		res := TrainResNetBigEarthNet(cfg, ds, split)
		if p == 1 {
			base = res.WallSeconds
		}
		sp := base / res.WallSeconds
		tb.Add(fmt.Sprint(p), fmt.Sprintf("%.2f s", res.WallSeconds),
			fmt.Sprintf("%.2f", sp), fmt.Sprintf("%.0f%%", sp/float64(p)*100), "meas")
		metrics[fmt.Sprintf("meas_speedup_p%d", p)] = sp
	}

	model := perfmodel.ResNet50BigEarthNet()
	for _, pt := range model.ScalingCurve([]int{8, 16, 32, 64, 96, 128}) {
		tb.Add(fmt.Sprint(pt.Workers), fmt.Sprintf("%.1f s", pt.EpochSec),
			fmt.Sprintf("%.1f", pt.Speedup), fmt.Sprintf("%.0f%%", pt.Efficiency*100), "model")
		metrics[fmt.Sprintf("model_speedup_p%d", pt.Workers)] = pt.Speedup
	}

	// fp16 gradient compression ablation at 128 GPUs.
	m16 := model
	m16.GradBytes = 2
	abl := NewTable("Gradient compression ablation at 128 GPUs (model)",
		"wire format", "epoch s", "speedup vs 1 GPU")
	abl.Add("fp32", fmt.Sprintf("%.1f", model.EpochTime(128)), fmt.Sprintf("%.1f", model.Speedup(128)))
	abl.Add("fp16", fmt.Sprintf("%.1f", m16.EpochTime(128)), fmt.Sprintf("%.1f", m16.EpochTime(1)/m16.EpochTime(128)))
	metrics["model_fp32_epoch128"] = model.EpochTime(128)
	metrics["model_fp16_epoch128"] = m16.EpochTime(128)

	return Result{
		ID: "E3", Title: "ResNet-50/BigEarthNet distributed training speed-up (§III-A)",
		Report:  tb.String() + "\n" + abl.String(),
		Metrics: metrics,
	}
}

// E4AccuracyVsWorkers reproduces Fig. 3 (bottom right): distributed
// training does not hurt accuracy when the warmup + linear-scaling rule is
// applied; the no-warmup ablation shows why the rule matters.
func E4AccuracyVsWorkers(scale Scale) Result {
	samples, epochs := 72, 20
	workerCounts := []int{1, 2, 4}
	if scale == Full {
		samples, epochs = 288, 16
		workerCounts = []int{1, 2, 4, 8}
	}
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: samples, Seed: 21,
		MaxLabels: 1, Classes: 4, Size: 12})
	split := data.TrainValSplit(samples, 0.25, 22)

	tb := NewTable("Validation micro-F1 vs workers (meas, BigEarthNet-syn)",
		"workers", "F1 (warmup+scale)", "F1 (no warmup)")
	metrics := map[string]float64{}
	for _, p := range workerCounts {
		with := TrainResNetBigEarthNet(DDPConfig{Workers: p, Epochs: epochs, Batch: 4,
			BaseLR: 0.02, Warmup: 8, Algo: mpi.AlgoRing, Seed: 41}, ds, split)
		without := TrainResNetBigEarthNet(DDPConfig{Workers: p, Epochs: epochs, Batch: 4,
			BaseLR: 0.02, Warmup: 0, Algo: mpi.AlgoRing, Seed: 41}, ds, split)
		tb.Add(fmt.Sprint(p), fmt.Sprintf("%.3f", with.ValMetric), fmt.Sprintf("%.3f", without.ValMetric))
		metrics[fmt.Sprintf("f1_scaled_p%d", p)] = with.ValMetric
		metrics[fmt.Sprintf("f1_const_p%d", p)] = without.ValMetric
	}
	return Result{
		ID: "E4", Title: "Accuracy unaffected by distributed training (§III-A)",
		Report:  tb.String(),
		Metrics: metrics,
	}
}

// E5Scale128 reproduces the Sedona et al. follow-up (§III-A / ref [20]):
// going from 96 to 128 GPUs still improves time-to-solution.
func E5Scale128() Result {
	model := perfmodel.ResNet50BigEarthNet()
	tb := NewTable("96 → 128 GPUs (model, ResNet-50 on JUWELS booster)",
		"GPUs", "epoch s", "imgs/s", "speedup", "efficiency")
	metrics := map[string]float64{}
	for _, pt := range model.ScalingCurve([]int{96, 128}) {
		tb.Add(fmt.Sprint(pt.Workers), fmt.Sprintf("%.1f", pt.EpochSec),
			fmt.Sprintf("%.0f", pt.ImgPerSec), fmt.Sprintf("%.1f", pt.Speedup),
			fmt.Sprintf("%.0f%%", pt.Efficiency*100))
		metrics[fmt.Sprintf("speedup_p%d", pt.Workers)] = pt.Speedup
		metrics[fmt.Sprintf("epoch_p%d", pt.Workers)] = pt.EpochSec
	}
	return Result{
		ID: "E5", Title: "Scaling from 96 to 128 GPUs (§III-A, ref [20])",
		Report:  tb.String(),
		Metrics: metrics,
	}
}

// E8QuantumSVM reproduces §III-C: quantum SVM on the annealer — binary
// only, sub-sampled, rescued by ensembles — against the classical SVM.
func E8QuantumSVM(scale Scale) Result {
	trainN, testN := 160, 80
	members, subSingle, subEns := 9, 16, 32
	anneal := qa.AnnealConfig{Reads: 10, Sweeps: 200, Seed: 77}
	if scale == Full {
		trainN, testN = 400, 200
		members = 15
		anneal = qa.AnnealConfig{Reads: 15, Sweeps: 400, Seed: 77}
	}
	// Noise 1.5 makes the task hard enough that the annealer's
	// sub-sampling limit visibly costs accuracy (the §III-C observation).
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: trainN + testN, Seed: 61,
		MaxLabels: 1, Classes: 2, Size: 8, Bands: 3, Noise: 1.5})
	flat, labels := ds.FlattenFeatures()
	x := make([][]float64, flat.Dim(0))
	y := make([]int, len(labels))
	for i := range x {
		x[i] = flat.Row(i)
		y[i] = labels[i]*2 - 1 // classes {0,1} → {-1,+1}
	}
	xTr, yTr := x[:trainN], y[:trainN]
	xTe, yTe := x[trainN:], y[trainN:]

	// Gamma scaled to the 192-dim feature distances.
	kernel := svm.RBF{Gamma: 0.001}
	classical := svm.Train(xTr, yTr, svm.Config{Kernel: kernel, Seed: 62})
	accClassical := classical.Accuracy(xTe, yTe)

	qcfg := qa.QSVMConfig{Bits: 3, Kernel: kernel, Anneal: anneal, Device: qa.Advantage}
	single, err := qa.TrainQSVM(xTr[:subSingle], yTr[:subSingle], qcfg)
	if err != nil {
		panic(err)
	}
	accSingle := single.Accuracy(xTe, yTe)
	ens, err := qa.TrainQEnsemble(xTr, yTr, members, subEns, qcfg, 63)
	if err != nil {
		panic(err)
	}
	accEns := ens.Accuracy(xTe, yTe)

	tb := NewTable("qSVM on the (simulated) annealer vs classical SVM (meas)",
		"classifier", "train samples seen", "test accuracy")
	tb.Add("classical SVM (SMO)", fmt.Sprint(trainN), fmt.Sprintf("%.3f", accClassical))
	tb.Add(fmt.Sprintf("qSVM single (sub-sample %d)", subSingle), fmt.Sprint(subSingle), fmt.Sprintf("%.3f", accSingle))
	tb.Add(fmt.Sprintf("qSVM ensemble (%d × %d)", members, subEns), fmt.Sprint(members*subEns), fmt.Sprintf("%.3f", accEns))

	limits := NewTable("Annealer capacity (3 encoding bits per sample)",
		"device", "qubits", "couplers", "max train samples")
	for _, d := range []qa.Device{qa.DWave2000Q, qa.Advantage} {
		limits.Add(d.Name, fmt.Sprint(d.Qubits), fmt.Sprint(d.Couplers), fmt.Sprint(d.MaxTrainSamples(3)))
	}

	return Result{
		ID: "E8", Title: "Quantum SVM with ensembles on the QM (§III-C)",
		Report: tb.String() + "\n" + limits.String(),
		Metrics: map[string]float64{
			"acc_classical": accClassical,
			"acc_qsvm_1":    accSingle,
			"acc_qsvm_ens":  accEns,
			"cap_2000q":     float64(qa.DWave2000Q.MaxTrainSamples(3)),
			"cap_advantage": float64(qa.Advantage.MaxTrainSamples(3)),
		},
	}
}

// E11CascadeSVM reproduces the parallel SVM speed-up claim (ref [16]):
// cascade training over P ranks against single-node SMO, with accuracy
// parity and the cascade-depth ablation implicit in the worker sweep.
func E11CascadeSVM(scale Scale) Result {
	n := 600
	workers := []int{1, 2, 4}
	if scale == Full {
		n = 2400
		workers = []int{1, 2, 4, 8, 16}
	}
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: n + 100, Seed: 71, MaxLabels: 1, Classes: 2, Size: 6, Bands: 2})
	flat, labels := ds.FlattenFeatures()
	x := make([][]float64, flat.Dim(0))
	y := make([]int, len(labels))
	for i := range x {
		x[i] = flat.Row(i)
		y[i] = labels[i]*2 - 1
	}
	xTr, yTr := x[:n], y[:n]
	xTe, yTe := x[n:], y[n:]
	cfg := svm.Config{Kernel: svm.RBF{Gamma: 0.05}, Seed: 72}

	tb := NewTable("Cascade SVM training (meas)", "workers", "train s", "speedup", "test accuracy")
	metrics := map[string]float64{}
	var base float64
	for _, p := range workers {
		start := time.Now()
		var acc float64
		if p == 1 {
			m := svm.Train(xTr, yTr, cfg)
			acc = m.Accuracy(xTe, yTe)
		} else {
			xs, ys := svm.ShardData(xTr, yTr, p)
			w := mpi.NewWorld(p)
			accs := make([]float64, p)
			if err := w.Run(func(c *mpi.Comm) error {
				m := svm.TrainCascade(c, xs[c.Rank()], ys[c.Rank()], cfg)
				accs[c.Rank()] = m.Accuracy(xTe, yTe)
				return nil
			}); err != nil {
				panic(err)
			}
			acc = accs[0]
		}
		wall := time.Since(start).Seconds()
		if p == 1 {
			base = wall
		}
		tb.Add(fmt.Sprint(p), fmt.Sprintf("meas: %.3f", wall),
			fmt.Sprintf("%.2f", base/wall), fmt.Sprintf("%.3f", acc))
		metrics[fmt.Sprintf("wall_p%d", p)] = wall
		metrics[fmt.Sprintf("acc_p%d", p)] = acc
	}
	return Result{
		ID: "E11", Title: "Parallel cascade SVM speed-up (§III, ref [16])",
		Report:  tb.String(),
		Metrics: metrics,
	}
}
