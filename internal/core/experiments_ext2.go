package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/data"
	"repro/internal/distdl"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/nn"
	"repro/internal/perfmodel"
	"repro/internal/qa"
	"repro/internal/storage"
	"repro/internal/svm"
	"repro/internal/tensor"
)

// E17InferenceScaleOut reproduces the §II-A deployment pattern: "compute-
// intensive training can be performed on the CM module while inference
// and testing (i.e., both less compute-intensive) can be scaled-out on
// the ESB". A model trained once is checkpointed, restored on every ESB
// rank, and inference is sharded — predictions must match the single-node
// run exactly; the perfmodel projects the throughput gain at module scale.
func E17InferenceScaleOut(scale Scale) Result {
	samples, epochs := 60, 8
	if scale == Full {
		samples, epochs = 240, 12
	}
	ds := data.GenCXR(data.CXRConfig{Samples: samples, Seed: 111})
	split := data.TrainValSplit(samples, 0.25, 112)

	// "Train on the CM": single-replica training, then checkpoint.
	model := nn.CovidNetMini(newRNG(113), ds.X.Dim(2), data.CXRClasses)
	opt := nn.NewSGD(0.9, 1e-4)
	loss := nn.SoftmaxCrossEntropy{}
	oneHot := ds.OneHotLabels()
	for e := 0; e < epochs; e++ {
		for _, batch := range batchIdx(split.Train, 4) {
			bx := data.SelectRows(ds.X, batch)
			by := data.SelectRows(oneHot, batch)
			model.ZeroGrads()
			out := model.Forward(bx, true)
			_, grad := loss.Forward(out, by)
			model.Backward(grad)
			opt.Step(model.Params(), 0.02)
		}
	}
	blob, err := nn.SaveModel(model)
	if err != nil {
		panic(err)
	}
	refPreds := model.Forward(ds.X, false).ArgmaxRows()

	// "Scale out on the ESB": restore the checkpoint on every rank and
	// shard inference; results must be bit-identical to the reference.
	metrics := map[string]float64{}
	tb := NewTable("Sharded inference vs single-node (meas)",
		"ranks", "wall s", "predictions match")
	for _, p := range []int{1, 2, 4} {
		w := mpi.NewWorld(p)
		var preds []int
		start := time.Now()
		if err := w.Run(func(c *mpi.Comm) error {
			replica := nn.CovidNetMini(newRNG(999), ds.X.Dim(2), data.CXRClasses)
			if err := nn.LoadModel(replica, blob); err != nil {
				return err
			}
			got := distdl.DistributedArgmax(c, replica, ds.X, 8)
			if c.Rank() == 0 {
				preds = got
			}
			return nil
		}); err != nil {
			panic(err)
		}
		wall := time.Since(start).Seconds()
		match := len(preds) == len(refPreds)
		for i := range refPreds {
			if preds[i] != refPreds[i] {
				match = false
				break
			}
		}
		tb.Add(fmt.Sprint(p), fmt.Sprintf("meas: %.3f", wall), fmt.Sprint(match))
		metrics[fmt.Sprintf("match_p%d", p)] = boolMetric(match)
		metrics[fmt.Sprintf("wall_p%d", p)] = wall
	}

	// Module-scale projection: inference throughput on the full ESB vs a
	// single CM node.
	deep := msa.DEEP()
	w := perfmodel.Workload{Name: "inference", Class: perfmodel.ClassDLInference,
		PrefersGPU: true, Flops: 1e15, Bytes: 5e11, ParallelFrac: 0.999,
		CommElems: 100, Steps: 10, MemoryGB: 8}
	esb := deep.Module(msa.BoosterModule)
	cm := deep.Module(msa.ClusterModule)
	tESB := perfmodel.Evaluate(w, perfmodel.Placement{Module: esb, Nodes: esb.Nodes()})
	tCM1 := perfmodel.Evaluate(w, perfmodel.Placement{Module: cm, Nodes: 1})
	proj := NewTable("Inference placement projection (model)",
		"placement", "time s")
	proj.Add("1 CM node", fmt.Sprintf("%.2f", tCM1.Seconds))
	proj.Add(fmt.Sprintf("ESB scale-out (%d nodes)", esb.Nodes()), fmt.Sprintf("%.4f", tESB.Seconds))
	metrics["esb_speedup"] = tCM1.Seconds / tESB.Seconds

	return Result{
		ID: "E17", Title: "Train on CM, scale out inference on ESB (§II-A)",
		Report:  tb.String() + "\n" + proj.String(),
		Metrics: metrics,
	}
}

// E18Checkpoint reproduces the NAM's original raison d'être (ref [12]:
// "accelerating checkpoint/restart application performance ... with
// network attached memory"): a simulation checkpointing through the NAM
// stalls far less than writing straight to the parallel filesystem.
func E18Checkpoint() Result {
	deep := msa.DEEP()
	fs := storage.NewSSSM(*deep.Module(msa.StorageService).Storage)
	nam := storage.NewNAM(*deep.Module(msa.NetworkMemory).NAM)

	tb := NewTable("Checkpoint stall per snapshot (model, DEEP SSSM vs NAM)",
		"nodes", "GB/node", "direct s", "via NAM s", "speedup")
	metrics := map[string]float64{}
	for _, cfg := range []struct {
		nodes int
		gb    float64
	}{
		{16, 4}, {50, 8}, {75, 16},
	} {
		plan := storage.CheckpointPlan{
			Nodes: cfg.nodes, StateGBNode: cfg.gb,
			IntervalSec: 3600, Checkpoints: 10, StripePerJob: 4,
		}
		direct, via, err := storage.CompareCheckpointTargets(plan, fs, nam)
		if err != nil {
			panic(err)
		}
		tb.Add(fmt.Sprint(cfg.nodes), fmt.Sprintf("%.0f", cfg.gb),
			fmt.Sprintf("%.1f", direct.StallPerCkpt), fmt.Sprintf("%.1f", via.StallPerCkpt),
			fmt.Sprintf("%.1fx", direct.StallPerCkpt/via.StallPerCkpt))
		metrics[fmt.Sprintf("speedup_n%d", cfg.nodes)] = direct.StallPerCkpt / via.StallPerCkpt
	}
	return Result{
		ID: "E18", Title: "NAM-accelerated checkpoint/restart (ref [12])",
		Report:  tb.String(),
		Metrics: metrics,
	}
}

// E20FeatureSelection reproduces the related-work annealer use case the
// paper surveys (Otgonbaatar & Datcu [36]: quantum annealing for feature
// extraction): an mRMR-style QUBO on the simulated device selects a
// compact feature subset for RS classification, compared against using
// all features and a random subset of the same size.
func E20FeatureSelection(scale Scale) Result {
	n := 240
	if scale == Full {
		n = 800
	}
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: n + 100, Seed: 141,
		MaxLabels: 1, Classes: 2, Size: 4, Bands: 4, Noise: 1.2})
	flat, labels := ds.FlattenFeatures()
	x := make([][]float64, flat.Dim(0))
	y := make([]int, len(labels))
	for i := range x {
		x[i] = flat.Row(i)
		y[i] = labels[i]*2 - 1
	}
	xTr, yTr := x[:n], y[:n]
	xTe, yTe := x[n:], y[n:]
	dims := len(x[0])
	const k = 12

	selected, err := qa.SelectFeatures(xTr, yTr, qa.FeatureSelectConfig{
		K: k, Anneal: qa.AnnealConfig{Reads: 10, Sweeps: 300, Seed: 142},
	})
	if err != nil {
		panic(err)
	}
	randomSel := newRNG(143).Perm(dims)[:k]

	kernel := svm.RBF{Gamma: 0.01}
	evalSubset := func(sel []int) float64 {
		m := svm.Train(qa.ProjectFeatures(xTr, sel), yTr, svm.Config{Kernel: kernel, Seed: 144})
		return m.Accuracy(qa.ProjectFeatures(xTe, sel), yTe)
	}
	full := svm.Train(xTr, yTr, svm.Config{Kernel: kernel, Seed: 144})
	accFull := full.Accuracy(xTe, yTe)
	accQA := evalSubset(selected)
	accRand := evalSubset(randomSel)

	tb := NewTable(fmt.Sprintf("QUBO feature selection for RS classification (meas, %d→%d features)", dims, len(selected)),
		"feature set", "features", "SVM test accuracy")
	tb.Add("all features", fmt.Sprint(dims), fmt.Sprintf("%.3f", accFull))
	tb.Add("annealer-selected (mRMR QUBO)", fmt.Sprint(len(selected)), fmt.Sprintf("%.3f", accQA))
	tb.Add("random subset", fmt.Sprint(k), fmt.Sprintf("%.3f", accRand))

	return Result{
		ID: "E20", Title: "Quantum-annealer feature selection (related work [36])",
		Report: tb.String(),
		Metrics: map[string]float64{
			"acc_full":   accFull,
			"acc_qa":     accQA,
			"acc_random": accRand,
			"n_selected": float64(len(selected)),
		},
	}
}

// E21AnomalyDetection reproduces the related-work hyperspectral anomaly
// detection approach the paper surveys (Zhang et al. [35]: low-rank and
// sparse representation): RPCA separates a low-rank background from
// sparse anomalies; detection precision is compared against a plain
// PCA-residual detector.
func E21AnomalyDetection(scale Scale) Result {
	nPixels := 400
	if scale == Full {
		nPixels = 2000
	}
	const bands, nAnom = 8, 8
	rng := newRNG(151)
	// Background spectra: rank-2 mixtures of two endmembers plus noise.
	em1 := make([]float64, bands)
	em2 := make([]float64, bands)
	for b := 0; b < bands; b++ {
		em1[b] = math.Sin(float64(b) * 0.8)
		em2[b] = math.Cos(float64(b) * 0.5)
	}
	x := tensor.New(nPixels, bands)
	for i := 0; i < nPixels; i++ {
		a, c := rng.Float64(), rng.Float64()
		row := x.Row(i)
		for b := 0; b < bands; b++ {
			row[b] = 3*a*em1[b] + 3*c*em2[b] + rng.NormFloat64()*0.1
		}
	}
	// Implant anomalous pixels (off-subspace spikes).
	anomalous := map[int]bool{}
	for len(anomalous) < nAnom {
		i := rng.Intn(nPixels)
		if anomalous[i] {
			continue
		}
		anomalous[i] = true
		row := x.Row(i)
		row[rng.Intn(bands)] += 4 + rng.Float64()*2
		row[rng.Intn(bands)] -= 4
	}

	topKPrecision := func(scores []float64) float64 {
		type sc struct {
			i int
			v float64
		}
		ranked := make([]sc, len(scores))
		for i, v := range scores {
			ranked[i] = sc{i, v}
		}
		sort.Slice(ranked, func(a, b int) bool { return ranked[a].v > ranked[b].v })
		hit := 0
		for k := 0; k < nAnom; k++ {
			if anomalous[ranked[k].i] {
				hit++
			}
		}
		return float64(hit) / nAnom
	}

	// RPCA detector.
	res := tensor.RPCA(x, tensor.RPCAConfig{Rank: 2, Seed: 152})
	precRPCA := topKPrecision(res.AnomalyScores())

	// Baseline: plain PCA residual norm.
	comps, means := tensor.PCA(x, 2, 40, newRNG(153))
	recon := tensor.PCAReconstruct(tensor.PCAProject(x, comps, means), comps, means)
	resid := tensor.Sub(x, recon)
	pcaScores := make([]float64, nPixels)
	for i := 0; i < nPixels; i++ {
		row := resid.Row(i)
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		pcaScores[i] = math.Sqrt(s)
	}
	precPCA := topKPrecision(pcaScores)

	tb := NewTable(fmt.Sprintf("Hyperspectral anomaly detection (meas, %d pixels, %d implanted anomalies)", nPixels, nAnom),
		"detector", "top-K precision")
	tb.Add("PCA residual baseline", fmt.Sprintf("%.2f", precPCA))
	tb.Add("RPCA low-rank + sparse (ref [35])", fmt.Sprintf("%.2f", precRPCA))

	return Result{
		ID: "E21", Title: "Low-rank + sparse anomaly detection (related work [35])",
		Report: tb.String(),
		Metrics: map[string]float64{
			"prec_rpca": precRPCA,
			"prec_pca":  precPCA,
		},
	}
}
