package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/mpi"
)

func TestNewRuntime(t *testing.T) {
	for _, name := range []string{"deep", "DEEP", "juwels"} {
		r, err := NewRuntime(name)
		if err != nil || r.System == nil {
			t.Fatalf("NewRuntime(%s): %v", name, err)
		}
	}
	if _, err := NewRuntime("frontier"); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("title", "a", "bb")
	tb.Add("1", "2")
	tb.Add("333")
	s := tb.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "333") {
		t.Fatalf("table render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), s)
	}
}

func TestResultMetricPanicsOnUnknown(t *testing.T) {
	r := Result{ID: "x", Metrics: map[string]float64{}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Metric("nope")
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 21 {
		t.Fatalf("expected 21 experiments, got %d", len(ids))
	}
	if _, err := RunExperiment("e99", Quick); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestE1MatchesTableI(t *testing.T) {
	r := cachedRun("e1")
	if r.Metric("nodes") != 16 || r.Metric("gpus") != 16 || r.Metric("fpgas") != 16 {
		t.Fatalf("E1 metrics: %v", r.Metrics)
	}
	if r.Metric("mem_gb_node") != 384 || r.Metric("nvm_tb") != 32 {
		t.Fatalf("E1 memory metrics: %v", r.Metrics)
	}
	if !strings.Contains(r.Report, "Cascade Lake") {
		t.Fatal("E1 report missing CPU row")
	}
}

func TestE2MatchesPaperNumbers(t *testing.T) {
	r := cachedRun("e2")
	want := map[string]float64{
		"cluster_nodes": 2583, "cluster_cores": 122768, "cluster_gpus": 224,
		"booster_nodes": 940, "booster_cores": 45024, "booster_gpus": 3744,
	}
	for k, v := range want {
		if r.Metric(k) != v {
			t.Fatalf("E2 %s = %v, want %v", k, r.Metric(k), v)
		}
	}
}

func TestE3ScalingShape(t *testing.T) {
	r := cachedRun("e3")
	// Model projection must keep increasing through 128 GPUs (the paper's
	// central speed-up claim).
	prev := 0.0
	for _, p := range []int{8, 16, 32, 64, 96, 128} {
		s := r.Metric("model_speedup_p" + itoa(p))
		if s <= prev {
			t.Fatalf("model speedup not increasing at %d: %v", p, r.Metrics)
		}
		prev = s
	}
	// fp16 must not be slower at 128 GPUs.
	if r.Metric("model_fp16_epoch128") > r.Metric("model_fp32_epoch128") {
		t.Fatal("fp16 slower than fp32 at 128 GPUs")
	}
	// Measured distributed runs completed and produced speedups > 0.
	if r.Metric("meas_speedup_p2") <= 0 {
		t.Fatal("no measured speedup recorded")
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestE4AccuracyPreserved(t *testing.T) {
	r := cachedRun("e4")
	base := r.Metric("f1_scaled_p1")
	if base <= 0.3 {
		t.Fatalf("baseline F1 too low to be meaningful: %f", base)
	}
	// Distributed training with the scaling rule must stay within 15% of
	// single-worker F1 (the paper: "without affecting prediction
	// accuracy").
	for _, p := range []int{2, 4} {
		f1 := r.Metric("f1_scaled_p" + itoa(p))
		if f1 < base*0.85 {
			t.Fatalf("accuracy lost at %d workers: %f vs %f", p, f1, base)
		}
	}
}

func TestE5MoreGPUsStillFaster(t *testing.T) {
	r := cachedRun("e5")
	if r.Metric("speedup_p128") <= r.Metric("speedup_p96") {
		t.Fatal("128 GPUs must beat 96 (Sedona et al. claim)")
	}
	if r.Metric("epoch_p128") >= r.Metric("epoch_p96") {
		t.Fatal("epoch time must shrink from 96 to 128")
	}
}

func TestE6CovidNetLearnsAndA100Faster(t *testing.T) {
	r := cachedRun("e6")
	if r.Metric("val_acc") < 0.5 { // 3 classes, chance = 0.33
		t.Fatalf("COVID-Net val accuracy %f barely above chance", r.Metric("val_acc"))
	}
	if r.Metric("a100_speedup") <= 1.5 {
		t.Fatalf("A100 should be markedly faster than V100: %f", r.Metric("a100_speedup"))
	}
}

func TestE7GRUBeatsForwardFill(t *testing.T) {
	r := cachedRun("e7")
	gru, cnn, ff := r.Metric("mae_gru"), r.Metric("mae_cnn"), r.Metric("mae_ffill")
	if gru >= ff {
		t.Fatalf("GRU (%f) must beat forward fill (%f)", gru, ff)
	}
	if cnn >= ff {
		t.Fatalf("1-D CNN (%f) must beat forward fill (%f) — the paper calls it promising", cnn, ff)
	}
}

func TestE8EnsembleRescuesSubsampling(t *testing.T) {
	r := cachedRun("e8")
	// The §III-C narrative: sub-sampling costs accuracy, ensembles recover
	// most of it.
	if r.Metric("acc_qsvm_ens") <= r.Metric("acc_qsvm_1") {
		t.Fatalf("ensemble (%f) must beat a single sub-sample (%f)",
			r.Metric("acc_qsvm_ens"), r.Metric("acc_qsvm_1"))
	}
	if r.Metric("acc_qsvm_ens") < r.Metric("acc_classical")-0.1 {
		t.Fatalf("ensemble (%f) should approach the classical SVM (%f)",
			r.Metric("acc_qsvm_ens"), r.Metric("acc_classical"))
	}
	if r.Metric("cap_advantage") <= r.Metric("cap_2000q") {
		t.Fatal("Advantage must hold more training samples than 2000Q")
	}
	if r.Metric("acc_classical") < 0.8 {
		t.Fatalf("classical SVM should do well here: %f", r.Metric("acc_classical"))
	}
}

func TestE9GCEWinsAtScaleInModel(t *testing.T) {
	r := cachedRun("e9")
	// At the booster's scale the GCE model must beat every software
	// algorithm (the §II-A rationale for in-fabric reduction).
	gce := r.Metric("model_gce_p3744_s")
	for _, algo := range []string{"naive", "tree", "recursive-doubling", "ring"} {
		if gce >= r.Metric("model_"+algo+"_p3744_s") {
			t.Fatalf("GCE (%g) should beat %s (%g) at 3744 ranks", gce, algo, r.Metric("model_"+algo+"_p3744_s"))
		}
	}
	// Ring beats naive in the bandwidth-bound regime.
	if r.Metric("model_ring_p512_s") >= r.Metric("model_naive_p512_s") {
		t.Fatal("ring must beat naive at scale")
	}
}

func TestE10ModularWins(t *testing.T) {
	r := cachedRun("e10")
	if r.Metric("modular_makespan") >= r.Metric("mono_cpu_makespan") {
		t.Fatalf("modular (%f) must beat monolithic CPU (%f)",
			r.Metric("modular_makespan"), r.Metric("mono_cpu_makespan"))
	}
	if r.Metric("modular_makespan") > r.Metric("modular_fcfs") {
		t.Fatal("backfill must not lengthen the makespan")
	}
}

func TestE11CascadeSpeedsUp(t *testing.T) {
	r := cachedRun("e11")
	if r.Metric("wall_p4") >= r.Metric("wall_p1") {
		t.Fatalf("cascade on 4 workers (%f) should beat single (%f)",
			r.Metric("wall_p4"), r.Metric("wall_p1"))
	}
	if r.Metric("acc_p4") < r.Metric("acc_p1")-0.05 {
		t.Fatalf("cascade accuracy %f fell below single %f", r.Metric("acc_p4"), r.Metric("acc_p1"))
	}
}

func TestE12NAMWins(t *testing.T) {
	r := cachedRun("e12")
	if r.Metric("nam_t_k16") >= r.Metric("dup_t_k16") {
		t.Fatalf("NAM (%f) should beat duplicate staging (%f) for 16 members",
			r.Metric("nam_t_k16"), r.Metric("dup_t_k16"))
	}
}

func TestE13AssignmentsMatchFig2(t *testing.T) {
	r := cachedRun("e13")
	if r.Metric("best_is_gpu_dl-training") != 1 {
		t.Fatal("DL training must land on a GPU module")
	}
	if r.Metric("best_is_gpu_cfd-simulation") != 0 {
		t.Fatal("CFD simulation should not land on the DAM")
	}
	if !(r.Metric("split_s") < r.Metric("cm_s") && r.Metric("split_s") < r.Metric("esb_s")) {
		t.Fatalf("MSA split must beat both monolithic placements: %v", r.Metrics)
	}
}

// TestAllExperimentsRunQuick is the integration smoke test: every
// experiment must complete at Quick scale and produce a non-empty report.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, e := range Experiments() {
		r := cachedRun(e.ID)
		if r.Report == "" || r.ID == "" {
			t.Fatalf("experiment %s produced empty output", e.ID)
		}
		if len(r.Metrics) == 0 {
			t.Fatalf("experiment %s produced no metrics", e.ID)
		}
	}
}

func TestDDPTrainersProduceSaneResults(t *testing.T) {
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: 24, Seed: 5})
	split := data.TrainValSplit(24, 0.25, 6)
	res := TrainResNetBigEarthNet(DDPConfig{Workers: 2, Epochs: 1, Batch: 4,
		BaseLR: 0.01, Algo: mpi.AlgoRing, Seed: 7}, ds, split)
	if res.Steps <= 0 || res.WallSeconds <= 0 {
		t.Fatalf("DDP bookkeeping: %+v", res)
	}
	if res.GradBytes <= 0 {
		t.Fatal("no gradient traffic recorded for 2 workers")
	}
}

func TestMetricsSortedDeterministic(t *testing.T) {
	r := Result{ID: "x", Metrics: map[string]float64{"b": 2, "a": 1}}
	s := MetricsSorted(r)
	if !strings.HasPrefix(s, "a=1") {
		t.Fatalf("metrics not sorted: %q", s)
	}
}
