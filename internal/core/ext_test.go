package core

import (
	"testing"

	"repro/internal/data"
)

func TestE14ForestBeatsSingleTree(t *testing.T) {
	r := cachedRun("e14")
	if r.Metric("acc_forest") <= r.Metric("acc_tree") {
		t.Fatalf("forest (%f) must beat single tree (%f)",
			r.Metric("acc_forest"), r.Metric("acc_tree"))
	}
	if r.Metric("acc_forest") < 0.6 {
		t.Fatalf("forest accuracy too low: %f", r.Metric("acc_forest"))
	}
	if r.Metric("dam_is_best") != 1 {
		t.Fatal("analytics workload must be placed on the DAM (§III-B)")
	}
	if r.Metric("km_inertia") <= 0 {
		t.Fatal("k-means must run")
	}
}

func TestE15AEBeatsPCAOnNonlinearSpectra(t *testing.T) {
	r := cachedRun("e15")
	mean, pca, ae := r.Metric("mse_mean"), r.Metric("mse_pca"), r.Metric("mse_ae")
	if pca >= mean || ae >= mean {
		t.Fatalf("both compressors must beat the mean baseline: mean=%f pca=%f ae=%f", mean, pca, ae)
	}
	if ae >= pca {
		t.Fatalf("AE (%f) should beat PCA (%f) on the saturated spectra", ae, pca)
	}
}

func TestE16GRUBeatsLinearEarlyWarning(t *testing.T) {
	r := cachedRun("e16")
	if r.Metric("gru_recall") <= r.Metric("lin_recall") {
		t.Fatalf("GRU recall (%f) must beat linear (%f)",
			r.Metric("gru_recall"), r.Metric("lin_recall"))
	}
	if r.Metric("gru_acc") < 1-r.Metric("positive_frac") {
		t.Fatalf("GRU accuracy %f below the majority-class baseline %f",
			r.Metric("gru_acc"), 1-r.Metric("positive_frac"))
	}
	if r.Metric("gru_recall") < 0.2 {
		t.Fatalf("GRU recall %f too low to be a useful early-warning system", r.Metric("gru_recall"))
	}
}

func TestExperimentRegistryIncludesExtensions(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 21 {
		t.Fatalf("expected 21 experiments, got %d: %v", len(ids), ids)
	}
	if ids[13] != "e14" || ids[20] != "e21" {
		t.Fatalf("extension ids wrong: %v", ids)
	}
}

func TestE17InferenceParity(t *testing.T) {
	r := cachedRun("e17")
	for _, p := range []string{"match_p1", "match_p2", "match_p4"} {
		if r.Metric(p) != 1 {
			t.Fatalf("sharded inference must match single-node exactly: %s=%v", p, r.Metric(p))
		}
	}
	if r.Metric("esb_speedup") <= 10 {
		t.Fatalf("ESB scale-out projection too small: %f", r.Metric("esb_speedup"))
	}
}

func TestE18NAMCheckpointWins(t *testing.T) {
	r := cachedRun("e18")
	for _, k := range []string{"speedup_n16", "speedup_n50", "speedup_n75"} {
		if r.Metric(k) <= 1 {
			t.Fatalf("NAM checkpointing must beat direct SSSM: %s=%f", k, r.Metric(k))
		}
	}
}

func TestE7GRUDAlsoBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := cachedRun("e7")
	if r.Metric("mae_grud") >= r.Metric("mae_ffill") {
		t.Fatalf("GRU-D (%f) must beat forward fill (%f)", r.Metric("mae_grud"), r.Metric("mae_ffill"))
	}
}

func TestE19SweepRanksModels(t *testing.T) {
	r := cachedRun("e19")
	if r.Metric("best_f1") < 0.5 {
		t.Fatalf("best model F1 too low: %f", r.Metric("best_f1"))
	}
	// The booster partition must make the sweep dramatically cheaper.
	if r.Metric("proj_branch_h")*5 > r.Metric("proj_seq_h") {
		t.Fatalf("sweep projection: %f h vs %f h", r.Metric("proj_branch_h"), r.Metric("proj_seq_h"))
	}
	// Larger models should not have fewer parameters (sanity of the sweep).
	if r.Metric("params_resnet-w16-s2") <= r.Metric("params_resnet-w8-s2") {
		t.Fatal("parameter counts inconsistent")
	}
}

func TestDDPZeROPathTrains(t *testing.T) {
	ds := data.GenCXR(data.CXRConfig{Samples: 24, Seed: 131})
	split := data.TrainValSplit(24, 0.25, 132)
	res := TrainCovidNet(DDPConfig{Workers: 2, Epochs: 15, Batch: 4,
		BaseLR: 0.01, ZeRO: true, Seed: 133}, ds, split)
	if res.Steps <= 0 {
		t.Fatalf("ZeRO path took no steps: %+v", res)
	}
	if res.ValMetric < 0.5 {
		t.Fatalf("ZeRO training accuracy %f", res.ValMetric)
	}
}

func TestE20FeatureSelectionHelps(t *testing.T) {
	r := cachedRun("e20")
	if r.Metric("acc_qa") < r.Metric("acc_random")-0.02 {
		t.Fatalf("annealer-selected features (%f) should not lose to random (%f)",
			r.Metric("acc_qa"), r.Metric("acc_random"))
	}
	if r.Metric("acc_qa") < 0.6 {
		t.Fatalf("selected-feature accuracy too low: %f", r.Metric("acc_qa"))
	}
	if r.Metric("n_selected") < 6 || r.Metric("n_selected") > 20 {
		t.Fatalf("cardinality constraint loose: %f features", r.Metric("n_selected"))
	}
}

func TestE21RPCABeatsOrMatchesPCA(t *testing.T) {
	r := cachedRun("e21")
	if r.Metric("prec_rpca") < r.Metric("prec_pca") {
		t.Fatalf("RPCA (%f) must not lose to the PCA baseline (%f)",
			r.Metric("prec_rpca"), r.Metric("prec_pca"))
	}
	if r.Metric("prec_rpca") < 0.7 {
		t.Fatalf("RPCA detection precision too low: %f", r.Metric("prec_rpca"))
	}
}
