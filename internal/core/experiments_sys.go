package core

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/storage"
)

// E1TableI regenerates the paper's Table I from the machine-readable DEEP
// configuration.
func E1TableI() Result {
	dam := msa.DEEP().Module(msa.DataAnalytics)
	return Result{
		ID:     "E1",
		Title:  "Table I — technical specifications of the DEEP DAM",
		Report: msa.RenderTableI(dam),
		Metrics: map[string]float64{
			"nodes":       float64(dam.Nodes()),
			"gpus":        float64(dam.GPUs()),
			"fpgas":       float64(dam.FPGAs()),
			"mem_gb_node": dam.Groups[0].Node.MemGB,
			"nvm_tb":      dam.TotalNVMTB(),
		},
	}
}

// E2JUWELS regenerates the §II-B JUWELS aggregates.
func E2JUWELS() Result {
	j := msa.JUWELS()
	cm := j.Module(msa.ClusterModule)
	esb := j.Module(msa.BoosterModule)
	tb := NewTable("JUWELS configuration (§II-B)", "module", "nodes", "cores", "GPUs")
	tb.Add("cluster", fmt.Sprint(cm.Nodes()), fmt.Sprint(cm.Cores()), fmt.Sprint(cm.GPUs()))
	tb.Add("booster", fmt.Sprint(esb.Nodes()), fmt.Sprint(esb.Cores()), fmt.Sprint(esb.GPUs()))
	tb.Add("paper cluster", "2583", "122768", "224")
	tb.Add("paper booster", "940", "45024", "3744")
	return Result{
		ID: "E2", Title: "JUWELS module aggregates (§II-B)",
		Report: j.Summary() + "\n" + tb.String(),
		Metrics: map[string]float64{
			"cluster_nodes": float64(cm.Nodes()), "cluster_cores": float64(cm.Cores()),
			"cluster_gpus": float64(cm.GPUs()), "booster_nodes": float64(esb.Nodes()),
			"booster_cores": float64(esb.Cores()), "booster_gpus": float64(esb.GPUs()),
		},
	}
}

// E9Allreduce compares the collective algorithms: measured wall time and
// traffic on the goroutine runtime at small rank counts, and the analytic
// model at the paper's scales (the GCE claim of §II-A).
func E9Allreduce(scale Scale) Result {
	algos := []mpi.Algo{mpi.AlgoNaive, mpi.AlgoTree, mpi.AlgoRecursiveDoubling, mpi.AlgoRing, mpi.AlgoGCE}
	ranksMeasured := []int{2, 4, 8}
	n := 1 << 14
	iters := 3
	if scale == Full {
		ranksMeasured = []int{2, 4, 8, 16}
		n = 1 << 18
		iters = 10
	}

	meas := NewTable("Allreduce: measured on goroutine ranks (payload "+fmt.Sprint(n)+" float64)",
		"algo", "ranks", "wall ms/op", "elems sent/rank")
	metrics := map[string]float64{}
	for _, p := range ranksMeasured {
		for _, algo := range algos {
			w := mpi.NewWorld(p)
			start := time.Now()
			err := w.Run(func(c *mpi.Comm) error {
				buf := make([]float64, n)
				for i := range buf {
					buf[i] = float64(c.Rank() + i)
				}
				for it := 0; it < iters; it++ {
					c.Allreduce(buf, mpi.OpSum, algo)
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			wall := time.Since(start).Seconds() / float64(iters) * 1000
			sent := w.RankStats(1%p).ElemsSent / int64(iters)
			meas.Add(string(algo), fmt.Sprint(p), fmt.Sprintf("meas: %.3f", wall), fmt.Sprint(sent))
			metrics[fmt.Sprintf("meas_%s_p%d_ms", algo, p)] = wall
		}
	}

	// Model projection at ESB scale over EXTOLL (ResNet-50 gradient size).
	proj := NewTable("Allreduce: alpha-beta model at scale (25.6M elems, EXTOLL)",
		"algo", "p=64", "p=512", "p=3744")
	const alpha, beta, gce = 1.2e-6, 8.0 / 12.5e9, 4.0
	grad := 25_600_000
	for _, algo := range algos {
		row := []string{string(algo)}
		for _, p := range []int{64, 512, 3744} {
			t := mpi.CollectiveCostModel(algo, p, grad, alpha, beta, gce)
			row = append(row, fmt.Sprintf("model: %.3f s", t))
			metrics[fmt.Sprintf("model_%s_p%d_s", algo, p)] = t
		}
		proj.Add(row...)
	}
	// Hierarchical (NVLink islands of 4 + EXTOLL between nodes): the
	// §III-A "GPUs connected by NVLink" structure.
	const alphaNV, betaNV = 0.5e-6, 8.0 / 300e9
	row := []string{"hierarchical(4)"}
	for _, p := range []int{64, 512, 3744} {
		t := mpi.HierarchicalCostModel(p, 4, grad, alphaNV, betaNV, alpha, beta)
		row = append(row, fmt.Sprintf("model: %.3f s", t))
		metrics[fmt.Sprintf("model_hier_p%d_s", p)] = t
	}
	proj.Add(row...)
	return Result{
		ID: "E9", Title: "GCE / allreduce algorithm comparison (§II-A)",
		Report:  meas.String() + "\n" + proj.String(),
		Metrics: metrics,
	}
}

// E10Scheduler runs the modular-vs-monolithic scheduling study with the
// backfill ablation (the conclusion's heterogeneous-scheduling claim).
func E10Scheduler(scale Scale) Result {
	nJobs := 60
	if scale == Full {
		nJobs = 400
	}
	sys := schedTestSystem()
	jobs := sched.GenWorkload(nJobs, 42)

	modular := sched.Simulate(sys, jobs, sched.Options{Backfill: true})
	modularNoBF := sched.Simulate(sys, jobs, sched.Options{Backfill: false})
	monoCPU := sched.Simulate(sched.Monolithic(sys, msa.ClusterModule), jobs, sched.Options{Backfill: true})
	monoGPU := sched.Simulate(sched.Monolithic(sys, msa.DataAnalytics), jobs, sched.Options{Backfill: true})

	tb := NewTable(fmt.Sprintf("Scheduling %d heterogeneous jobs (meas: discrete-event sim)", nJobs),
		"system", "makespan h", "avg wait h", "energy MWh")
	add := func(name string, r sched.Report) {
		tb.Add(name, fmt.Sprintf("%.2f", r.Makespan/3600),
			fmt.Sprintf("%.2f", r.AvgWait/3600), fmt.Sprintf("%.3f", r.EnergyJ/3.6e9))
	}
	add("MSA modular (EASY)", modular)
	add("MSA modular (FCFS)", modularNoBF)
	add("monolithic CPU", monoCPU)
	add("monolithic GPU/DAM", monoGPU)

	return Result{
		ID: "E10", Title: "Modular vs monolithic scheduling (conclusion claim)",
		Report: tb.String(),
		Metrics: map[string]float64{
			"modular_makespan":  modular.Makespan,
			"modular_fcfs":      modularNoBF.Makespan,
			"mono_cpu_makespan": monoCPU.Makespan,
			"mono_gpu_makespan": monoGPU.Makespan,
			"modular_energy":    modular.EnergyJ,
			"mono_cpu_energy":   monoCPU.EnergyJ,
		},
	}
}

// schedTestSystem scales DEEP's module mix to a size where the workload
// trace saturates the machine.
func schedTestSystem() *msa.System {
	sys := msa.DEEP()
	// Use the real DEEP module sizes (50 CM / 75 ESB / 16 DAM).
	return sys
}

// E12Storage sweeps parallel-filesystem read bandwidth and compares NAM
// sharing against duplicate staging (§II-A SSSM/NAM claims).
func E12Storage() Result {
	deep := msa.DEEP()
	fs := storage.NewSSSM(*deep.Module(msa.StorageService).Storage)
	namSpec := *deep.Module(msa.NetworkMemory).NAM

	sweep := NewTable("SSSM striped read bandwidth (model, GB/s per stream)",
		"stripe", "1 reader", "4 readers", "16 readers")
	for _, stripe := range []int{1, 2, 4, 8} {
		row := []string{fmt.Sprint(stripe)}
		for _, readers := range []int{1, 4, 16} {
			row = append(row, fmt.Sprintf("%.2f", fs.StreamBW(stripe, readers)))
		}
		sweep.Add(row...)
	}

	nam := NewTable("Dataset staging: NAM shared vs duplicate downloads (66 GB BigEarthNet)",
		"group size", "duplicate s", "NAM s", "SSSM bytes ratio")
	metrics := map[string]float64{}
	const sizeGB = 66 // BigEarthNet archive size
	for _, k := range []int{2, 4, 8, 16} {
		n := storage.NewNAM(namSpec)
		dupT, dupB := storage.DuplicateDownloadTime(k, sizeGB, fs, 4)
		namT, namB := storage.SharedNAMTime(k, sizeGB, fs, n, 4)
		nam.Add(fmt.Sprint(k), fmt.Sprintf("%.1f", dupT), fmt.Sprintf("%.1f", namT),
			fmt.Sprintf("%.1fx", dupB/namB))
		metrics[fmt.Sprintf("dup_t_k%d", k)] = dupT
		metrics[fmt.Sprintf("nam_t_k%d", k)] = namT
	}
	return Result{
		ID: "E12", Title: "SSSM striping and NAM dataset sharing (§II-A, §III-B)",
		Report:  sweep.String() + "\n" + nam.String(),
		Metrics: metrics,
	}
}

// E13ModuleAssignment evaluates each Fig. 2 workload class on each DEEP
// module and reports the best-module assignment plus the two-phase
// MSA-vs-monolithic comparison.
func E13ModuleAssignment() Result {
	deep := msa.DEEP()
	workloads := []perfmodel.Workload{
		{Name: "cfd-simulation", Class: perfmodel.ClassSimulation,
			Flops: 5e15, Bytes: 2e13, ParallelFrac: 0.999, CommElems: 50_000, Steps: 2000, MemoryGB: 64},
		{Name: "dl-training", Class: perfmodel.ClassDLTraining, PrefersGPU: true,
			Flops: 2e16, Bytes: 5e12, ParallelFrac: 0.995, CommElems: 25_600_000, Steps: 500, MemoryGB: 30},
		{Name: "dl-inference", Class: perfmodel.ClassDLInference, PrefersGPU: true,
			Flops: 2e15, Bytes: 1e12, ParallelFrac: 0.999, CommElems: 1000, Steps: 100, MemoryGB: 16},
		{Name: "spark-analytics", Class: perfmodel.ClassHPDA,
			Flops: 1e14, Bytes: 8e13, ParallelFrac: 0.9, CommElems: 100_000, Steps: 50, MemoryGB: 300},
		{Name: "seismic-highscale", Class: perfmodel.ClassHighScale,
			Flops: 1e16, Bytes: 1e13, ParallelFrac: 0.999, CommElems: 20_000, Steps: 5000, MemoryGB: 40},
	}
	tb := NewTable("Workload → module time-to-solution (model, 16 nodes each; best marked *)",
		"workload", "CM", "ESB", "DAM", "best")
	metrics := map[string]float64{}
	for _, w := range workloads {
		best, all := perfmodel.BestModule(w, deep, 16)
		row := []string{w.Name}
		for _, name := range []string{"deep-cm", "deep-esb", "deep-dam"} {
			cell := fmt.Sprintf("%.0f s", all[name].Seconds)
			if deep.ModuleByName(name) == best {
				cell = "*" + cell
			}
			row = append(row, cell)
		}
		row = append(row, string(best.Kind))
		tb.Add(row...)
		metrics["best_is_gpu_"+w.Name] = 0
		if best.GPUs() > 0 {
			metrics["best_is_gpu_"+w.Name] = 1
		}
	}

	// Two-phase MSA benefit (Fig. 2's third user type).
	app := perfmodel.TwoPhaseApp{
		PhaseA: perfmodel.Workload{Name: "prep", Class: perfmodel.ClassLowScale,
			Flops: 5e13, Bytes: 2e13, ParallelFrac: 0.80, MemoryGB: 100},
		PhaseB: perfmodel.Workload{Name: "train", Class: perfmodel.ClassDLTraining, PrefersGPU: true,
			Flops: 5e15, Bytes: 1e12, ParallelFrac: 0.995, CommElems: 25_600_000, Steps: 500, MemoryGB: 30},
		DataGB: 50,
	}
	cm := deep.Module(msa.ClusterModule)
	esb := deep.Module(msa.BoosterModule)
	onCM := app.MonolithicTime(cm, 8, 32)
	onESB := app.MonolithicTime(esb, 8, 32)
	split := app.ModularTime(cm, esb, deep.Federation, 8, 32)
	two := NewTable("Two-phase app (prep + training): monolithic vs MSA split (model)",
		"placement", "time s", "energy MJ")
	two.Add("CM only", fmt.Sprintf("%.0f", onCM.Seconds), fmt.Sprintf("%.1f", onCM.Joules/1e6))
	two.Add("ESB only", fmt.Sprintf("%.0f", onESB.Seconds), fmt.Sprintf("%.1f", onESB.Joules/1e6))
	two.Add("MSA split CM→ESB", fmt.Sprintf("%.0f", split.Seconds), fmt.Sprintf("%.1f", split.Joules/1e6))
	metrics["split_s"] = split.Seconds
	metrics["cm_s"] = onCM.Seconds
	metrics["esb_s"] = onESB.Seconds

	return Result{
		ID: "E13", Title: "Fig. 2 workload diversity: best-module assignment & MSA benefit",
		Report:  tb.String() + "\n" + two.String(),
		Metrics: metrics,
	}
}
