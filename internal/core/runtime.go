package core

import (
	"fmt"
	"strings"

	"repro/internal/msa"
)

// Runtime binds the experiment harness to one MSA system description.
type Runtime struct {
	System *msa.System
}

// NewRuntime builds a runtime for a named reference system ("deep" or
// "juwels", case-insensitive).
func NewRuntime(systemName string) (*Runtime, error) {
	var sys *msa.System
	switch strings.ToLower(systemName) {
	case "deep":
		sys = msa.DEEP()
	case "juwels":
		sys = msa.JUWELS()
	case "lumi":
		sys = msa.LUMI()
	default:
		return nil, fmt.Errorf("core: unknown system %q (want deep, juwels or lumi)", systemName)
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid system config: %w", err)
	}
	return &Runtime{System: sys}, nil
}

// Scale selects the problem sizes the experiments run at.
type Scale int

// Experiment scales: Quick keeps every experiment in test-friendly
// seconds; Full runs the sizes the cmd/msa-bench harness reports.
const (
	Quick Scale = iota
	Full
)
