package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/data"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/perfmodel"
)

// E19ModelComparison reproduces the §III-A observation that distributed
// speed-up "enables the deployment of various models to compare their
// performances in a reasonable amount of time": a sweep over CNN variants
// is trained (data-parallel) and ranked, and the wall-clock cost of the
// sweep is projected for a single GPU versus a booster partition.
func E19ModelComparison(scale Scale) Result {
	samples, epochs, workers := 60, 8, 2
	if scale == Full {
		samples, epochs, workers = 240, 12, 4
	}
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: samples, Seed: 121,
		MaxLabels: 1, Classes: 4, Size: 12})
	split := data.TrainValSplit(samples, 0.25, 122)

	type variant struct {
		name          string
		width, stages int
	}
	variants := []variant{
		{"resnet-w4-s1", 4, 1},
		{"resnet-w8-s1", 8, 1},
		{"resnet-w8-s2", 8, 2},
		{"resnet-w16-s2", 16, 2},
	}

	type row struct {
		name   string
		params int
		valF1  float64
		wall   float64
	}
	rows := make([]row, 0, len(variants))
	sweepStart := time.Now()
	for _, v := range variants {
		build := func() *nn.Sequential {
			return nn.ResNetMini(rand.New(rand.NewSource(123)), ds.X.Dim(1), ds.Classes, v.width, v.stages)
		}
		evalFn := func(m *nn.Sequential, idx []int) float64 {
			x := data.SelectRows(ds.X, idx)
			y := data.SelectRows(ds.Y, idx)
			return nn.MultiLabelF1(m.Forward(x, false), y)
		}
		start := time.Now()
		res := runDDP(DDPConfig{Workers: workers, Epochs: epochs, Batch: 4,
			BaseLR: 0.02, Warmup: 8, Algo: mpi.AlgoRing, Seed: 124},
			build, nn.BCEWithLogits{}, ds.X, ds.Y, split, evalFn)
		rows = append(rows, row{
			name: v.name, params: nn.NumParams(build().Params()),
			valF1: res.ValMetric, wall: time.Since(start).Seconds(),
		})
	}
	sweepWall := time.Since(sweepStart).Seconds()

	sort.Slice(rows, func(i, j int) bool { return rows[i].valF1 > rows[j].valF1 })
	tb := NewTable(fmt.Sprintf("Model comparison sweep (meas, %d variants × %d workers, ranked by val F1)",
		len(variants), workers),
		"model", "params", "val F1", "train s")
	for _, r := range rows {
		tb.Add(r.name, fmt.Sprint(r.params), fmt.Sprintf("%.3f", r.valF1), fmt.Sprintf("%.2f", r.wall))
	}

	// Sweep-cost projection: K candidate ResNet-50-class models trained to
	// convergence (90 epochs) on 1 GPU sequentially vs on a 96-GPU booster
	// partition (each model data-parallel on 24 GPUs, 4 concurrent).
	model := perfmodel.ResNet50BigEarthNet()
	const kModels, fullEpochs = 8, 90
	seq := float64(kModels) * fullEpochs * model.EpochTime(1)
	concurrent := 24
	batchOf4 := float64(kModels) / 4 * fullEpochs * model.EpochTime(concurrent)
	proj := NewTable("Sweep-cost projection: 8 ResNet-50 candidates to convergence (model)",
		"resources", "sweep time h")
	proj.Add("1 GPU, sequential", fmt.Sprintf("%.1f", seq/3600))
	proj.Add("96 GPUs (4 × 24-GPU jobs)", fmt.Sprintf("%.2f", batchOf4/3600))

	metrics := map[string]float64{
		"best_f1":       rows[0].valF1,
		"sweep_wall":    sweepWall,
		"proj_seq_h":    seq / 3600,
		"proj_branch_h": batchOf4 / 3600,
	}
	for _, r := range rows {
		metrics["f1_"+r.name] = r.valF1
		metrics["params_"+r.name] = float64(r.params)
	}
	return Result{
		ID: "E19", Title: "Model comparison enabled by distributed speed-up (§III-A)",
		Report:  tb.String() + "\n" + proj.String(),
		Metrics: metrics,
	}
}
