package core

import (
	"math/rand"
	"time"

	"fmt"

	"repro/internal/data"
	"repro/internal/distdl"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// DDPConfig configures a distributed data-parallel training run: the
// Horovod workflow of §III-A executed on the goroutine-rank MPI runtime.
type DDPConfig struct {
	Workers int
	Epochs  int
	Batch   int // per-worker batch
	BaseLR  float64
	// Warmup enables the warmup + linear-scaling large-batch rule; 0
	// disables it (constant BaseLR, the ablation of E4).
	Warmup int
	Algo   mpi.Algo
	FP16   bool
	// Overlap enables overlapped bucketed gradient synchronization:
	// per-bucket nonblocking allreduces launched from the backward hook
	// instead of one blocking allreduce after backward.
	Overlap bool
	// BucketBytes caps the gradient bucket size when Overlap is on (or
	// forces blocking bucketed sync when set without Overlap); 0 with
	// Overlap uses distdl.DefaultBucketBytes.
	BucketBytes int
	// ZeRO switches to the DeepSpeed-style sharded-optimizer trainer
	// (Adam state split across ranks) instead of replicated SGD.
	ZeRO bool
	// PipelineStages, when > 1, switches to 2D (data × pipeline) training:
	// the Workers ranks form Workers/PipelineStages replica groups, each
	// running the model as a PipelineStages-deep pipeline. Must divide
	// Workers. Mutually exclusive with ZeRO/Overlap/FP16 (the pipeline
	// path has its own per-chunk gradient sync).
	PipelineStages int
	// MicroBatches is the pipeline micro-batch count per step (M);
	// defaults to 4 when PipelineStages > 1 and this is 0.
	MicroBatches int
	// PipeSchedule selects gpipe or 1f1b (default gpipe).
	PipeSchedule pipeline.Schedule
	// VirtualChunks is the interleaving depth v (0 = schedule default).
	VirtualChunks int
	Seed          int64
	// Tracer, when non-nil, is attached to the MPI world (per-rank
	// collective spans) and both trainer kinds (compute/comm/step spans),
	// yielding one Chrome-trace track per rank.
	Tracer *telemetry.Tracer
	// Registry, when non-nil, receives the world's collective counters
	// (per-kind totals, message and element volume) for Prometheus export.
	Registry *telemetry.Registry
}

// DDPResult aggregates a run.
type DDPResult struct {
	FinalLoss   float64
	TrainMetric float64 // accuracy (single-label) or micro-F1 (multi-label)
	ValMetric   float64
	WallSeconds float64
	Steps       int
	GradBytes   int64
	// CommFraction is rank 0's communication share of step time;
	// OverlapRatio is the fraction of gradient allreduce time hidden
	// behind backward compute (0 unless Overlap was on).
	CommFraction float64
	OverlapRatio float64
	// BubbleFraction is the pipeline schedule's idle fraction (0 unless
	// PipelineStages > 1): the planned-schedule replay measure, which is
	// independent of host core count (see pipeline.PlannedBubble).
	BubbleFraction float64
}

// TrainResNetBigEarthNet trains the mini ResNet on a synthetic
// BigEarthNet split, data-parallel over cfg.Workers simulated GPUs, and
// reports multi-label micro-F1 (the BigEarthNet metric).
func TrainResNetBigEarthNet(cfg DDPConfig, ds *data.Multispectral, split data.Split) DDPResult {
	bands := ds.X.Dim(1)
	build := func() *nn.Sequential {
		return nn.ResNetMini(rand.New(rand.NewSource(cfg.Seed)), bands, ds.Classes, 8, 2)
	}
	loss := nn.BCEWithLogits{}
	evalFn := func(m *nn.Sequential, idx []int) float64 {
		x := data.SelectRows(ds.X, idx)
		y := data.SelectRows(ds.Y, idx)
		return nn.MultiLabelF1(m.Forward(x, false), y)
	}
	return runDDP(cfg, build, loss, ds.X, ds.Y, split, evalFn)
}

// TrainCovidNet trains the CXR screening CNN and reports accuracy.
func TrainCovidNet(cfg DDPConfig, ds *data.CXRDataset, split data.Split) DDPResult {
	oneHot := ds.OneHotLabels()
	build := func() *nn.Sequential {
		return nn.CovidNetMini(rand.New(rand.NewSource(cfg.Seed)), ds.X.Dim(2), data.CXRClasses)
	}
	loss := nn.SoftmaxCrossEntropy{}
	evalFn := func(m *nn.Sequential, idx []int) float64 {
		x := data.SelectRows(ds.X, idx)
		labels := data.SelectLabels(ds.Labels, idx)
		return nn.Accuracy(m.Forward(x, false), labels)
	}
	return runDDP(cfg, build, loss, ds.X, oneHot, split, evalFn)
}

// runDDP executes the generic distributed training loop: one goroutine
// rank per worker, epoch-seeded shard shuffling, synchronous gradient
// allreduce, and rank-0 evaluation.
func runDDP(cfg DDPConfig, build func() *nn.Sequential, loss nn.Loss,
	xs, ys *tensor.Tensor, split data.Split, evalFn func(*nn.Sequential, []int) float64) DDPResult {

	if cfg.Workers < 1 {
		panic("core: DDP needs at least one worker")
	}
	if cfg.Algo == "" {
		cfg.Algo = mpi.AlgoRing
	}
	pipelined := cfg.PipelineStages > 1
	if pipelined {
		if cfg.Workers%cfg.PipelineStages != 0 {
			panic(fmt.Sprintf("core: %d workers not divisible by %d pipeline stages", cfg.Workers, cfg.PipelineStages))
		}
		if cfg.MicroBatches == 0 {
			cfg.MicroBatches = 4
		}
		if cfg.Batch < cfg.MicroBatches {
			panic(fmt.Sprintf("core: per-replica batch %d smaller than %d micro-batches", cfg.Batch, cfg.MicroBatches))
		}
		if cfg.ZeRO || cfg.Overlap || cfg.FP16 {
			panic("core: pipeline mode does not compose with ZeRO/Overlap/FP16")
		}
	}
	var sched nn.Schedule
	if cfg.Warmup > 0 {
		sched = nn.WarmupLinearScale{Base: cfg.BaseLR, Workers: cfg.Workers, WarmupSteps: cfg.Warmup}
	} else {
		sched = nn.ConstLR(cfg.BaseLR)
	}
	comp := distdl.NoCompression
	if cfg.FP16 {
		comp = distdl.FP16Compression
	}

	world := mpi.NewWorld(cfg.Workers)
	// Route algorithm-agnostic collectives (scalar loss sync) through the
	// run's configured algorithm as well.
	world.SetDefaultAlgo(cfg.Algo)
	if cfg.Tracer != nil {
		world.SetTracer(cfg.Tracer)
	}
	if cfg.Registry != nil {
		world.RegisterMetrics(cfg.Registry)
	}
	var out DDPResult
	start := time.Now()
	err := world.Run(func(c *mpi.Comm) error {
		model := build()
		var tr distdl.Stepper
		switch {
		case pipelined:
			tr = distdl.New(c, model, loss, nn.NewSGD(0.9, 1e-4),
				distdl.WithSchedule(sched), distdl.WithTracer(cfg.Tracer),
				distdl.WithPipeline(cfg.PipelineStages, cfg.MicroBatches, cfg.PipeSchedule),
				distdl.WithVirtualChunks(cfg.VirtualChunks))
		case cfg.ZeRO:
			tr = distdl.New(c, model, loss, nil, distdl.WithZeRO(),
				distdl.WithAlgo(cfg.Algo), distdl.WithSchedule(sched), distdl.WithTracer(cfg.Tracer))
		default:
			tr = distdl.New(c, model, loss, nn.NewSGD(0.9, 1e-4),
				distdl.WithAlgo(cfg.Algo), distdl.WithCompression(comp), distdl.WithSchedule(sched),
				distdl.WithTracer(cfg.Tracer), distdl.WithBucketBytes(cfg.BucketBytes),
				distdl.WithOverlap(cfg.Overlap))
		}
		plain, _ := tr.(*distdl.Trainer)
		pipeTr, _ := tr.(*distdl.PipelineTrainer)
		// Data sharding: in DDP every rank is its own shard; in 2D every
		// replica group is one shard, and all its stage ranks must iterate
		// the identical batch sequence.
		shardIdx, shards := c.Rank(), cfg.Workers
		if pipeTr != nil {
			shardIdx, shards = pipeTr.Replica(), pipeTr.Replicas()
		}
		var last float64
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			shard := distdl.Shard(len(split.Train), cfg.Seed+int64(epoch), shardIdx, shards)
			for _, batch := range distdl.Batches(shard, cfg.Batch) {
				if pipeTr != nil && len(batch) < cfg.MicroBatches {
					continue // tail batch too small to split into micros
				}
				idx := make([]int, len(batch))
				for i, b := range batch {
					idx[i] = split.Train[b]
				}
				bx, by := distdl.GatherBatch(xs, ys, idx)
				last = tr.Step(bx, by)
			}
		}
		if pipeTr != nil {
			// Collective per replica group: afterwards every rank holds the
			// full trained model, so rank-0 evaluation sees all chunks.
			pipeTr.SyncFullModel()
		}
		if c.Rank() == 0 {
			out.FinalLoss = last
			out.Steps = tr.StepCount()
			out.CommFraction = tr.CommFraction()
			if plain != nil {
				out.GradBytes = plain.GradBytesSent
				out.OverlapRatio = plain.OverlapRatio()
			}
			if pipeTr != nil {
				out.BubbleFraction = pipeline.PlannedBubble(
					cfg.PipelineStages, cfg.VirtualChunks, cfg.MicroBatches, cfg.PipeSchedule, 1, 2)
			}
			out.TrainMetric = evalFn(model, split.Train)
			if len(split.Val) > 0 {
				out.ValMetric = evalFn(model, split.Val)
			}
		}
		return nil
	})
	if err != nil {
		panic(err) // ranks only return nil here
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out
}

// ImputerKind selects the §IV-B model variant.
type ImputerKind string

// Imputer variants: the paper's GRU, its 1-D CNN alternative, and the
// GRU-D extension from the related work (Che et al. [39]).
const (
	ImputerGRU  ImputerKind = "gru"
	ImputerCNN  ImputerKind = "cnn"
	ImputerGRUD ImputerKind = "grud"
)

// TrainGRUImputer trains a §IV-B imputation model with Adam. The model is
// fitted on trainTask's hidden positions and scored on evalTask's — the
// two tasks hide *different* random positions of the same stays, so the
// evaluation measures generalization, not memorization.
func TrainGRUImputer(trainTask, evalTask *data.ImputationTask, epochs int, lr float64, kind ImputerKind, seed int64) (evalMAE float64, model *nn.Sequential) {
	rng := rand.New(rand.NewSource(seed))
	features := trainTask.Input.Dim(2)
	switch kind {
	case ImputerCNN:
		model = nn.Conv1DImputer(rng, features)
	case ImputerGRUD:
		model = nn.GRUDImputer(rng, features)
	default:
		model = nn.GRUImputer(rng, features)
	}
	opt := nn.NewAdam()
	loss := nn.MaskedMAE{Mask: trainTask.EvalMask}
	for e := 0; e < epochs; e++ {
		model.ZeroGrads()
		pred := model.Forward(trainTask.Input, true)
		_, grad := loss.Forward(pred, trainTask.Target)
		model.Backward(grad)
		nn.ClipGradNorm(model.Params(), 5)
		opt.Step(model.Params(), lr)
	}
	pred := model.Forward(evalTask.Input, false)
	return evalTask.MAEOn(pred), model
}
