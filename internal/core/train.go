package core

import (
	"math/rand"
	"time"

	"repro/internal/data"
	"repro/internal/distdl"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// DDPConfig configures a distributed data-parallel training run: the
// Horovod workflow of §III-A executed on the goroutine-rank MPI runtime.
type DDPConfig struct {
	Workers int
	Epochs  int
	Batch   int // per-worker batch
	BaseLR  float64
	// Warmup enables the warmup + linear-scaling large-batch rule; 0
	// disables it (constant BaseLR, the ablation of E4).
	Warmup int
	Algo   mpi.Algo
	FP16   bool
	// Overlap enables overlapped bucketed gradient synchronization:
	// per-bucket nonblocking allreduces launched from the backward hook
	// instead of one blocking allreduce after backward.
	Overlap bool
	// BucketBytes caps the gradient bucket size when Overlap is on (or
	// forces blocking bucketed sync when set without Overlap); 0 with
	// Overlap uses distdl.DefaultBucketBytes.
	BucketBytes int
	// ZeRO switches to the DeepSpeed-style sharded-optimizer trainer
	// (Adam state split across ranks) instead of replicated SGD.
	ZeRO bool
	Seed int64
	// Tracer, when non-nil, is attached to the MPI world (per-rank
	// collective spans) and both trainer kinds (compute/comm/step spans),
	// yielding one Chrome-trace track per rank.
	Tracer *telemetry.Tracer
	// Registry, when non-nil, receives the world's collective counters
	// (per-kind totals, message and element volume) for Prometheus export.
	Registry *telemetry.Registry
}

// DDPResult aggregates a run.
type DDPResult struct {
	FinalLoss   float64
	TrainMetric float64 // accuracy (single-label) or micro-F1 (multi-label)
	ValMetric   float64
	WallSeconds float64
	Steps       int
	GradBytes   int64
	// CommFraction is rank 0's communication share of step time;
	// OverlapRatio is the fraction of gradient allreduce time hidden
	// behind backward compute (0 unless Overlap was on).
	CommFraction float64
	OverlapRatio float64
}

// TrainResNetBigEarthNet trains the mini ResNet on a synthetic
// BigEarthNet split, data-parallel over cfg.Workers simulated GPUs, and
// reports multi-label micro-F1 (the BigEarthNet metric).
func TrainResNetBigEarthNet(cfg DDPConfig, ds *data.Multispectral, split data.Split) DDPResult {
	bands := ds.X.Dim(1)
	build := func() *nn.Sequential {
		return nn.ResNetMini(rand.New(rand.NewSource(cfg.Seed)), bands, ds.Classes, 8, 2)
	}
	loss := nn.BCEWithLogits{}
	evalFn := func(m *nn.Sequential, idx []int) float64 {
		x := data.SelectRows(ds.X, idx)
		y := data.SelectRows(ds.Y, idx)
		return nn.MultiLabelF1(m.Forward(x, false), y)
	}
	return runDDP(cfg, build, loss, ds.X, ds.Y, split, evalFn)
}

// TrainCovidNet trains the CXR screening CNN and reports accuracy.
func TrainCovidNet(cfg DDPConfig, ds *data.CXRDataset, split data.Split) DDPResult {
	oneHot := ds.OneHotLabels()
	build := func() *nn.Sequential {
		return nn.CovidNetMini(rand.New(rand.NewSource(cfg.Seed)), ds.X.Dim(2), data.CXRClasses)
	}
	loss := nn.SoftmaxCrossEntropy{}
	evalFn := func(m *nn.Sequential, idx []int) float64 {
		x := data.SelectRows(ds.X, idx)
		labels := data.SelectLabels(ds.Labels, idx)
		return nn.Accuracy(m.Forward(x, false), labels)
	}
	return runDDP(cfg, build, loss, ds.X, oneHot, split, evalFn)
}

// runDDP executes the generic distributed training loop: one goroutine
// rank per worker, epoch-seeded shard shuffling, synchronous gradient
// allreduce, and rank-0 evaluation.
func runDDP(cfg DDPConfig, build func() *nn.Sequential, loss nn.Loss,
	xs, ys *tensor.Tensor, split data.Split, evalFn func(*nn.Sequential, []int) float64) DDPResult {

	if cfg.Workers < 1 {
		panic("core: DDP needs at least one worker")
	}
	if cfg.Algo == "" {
		cfg.Algo = mpi.AlgoRing
	}
	var sched nn.Schedule
	if cfg.Warmup > 0 {
		sched = nn.WarmupLinearScale{Base: cfg.BaseLR, Workers: cfg.Workers, WarmupSteps: cfg.Warmup}
	} else {
		sched = nn.ConstLR(cfg.BaseLR)
	}
	comp := distdl.NoCompression
	if cfg.FP16 {
		comp = distdl.FP16Compression
	}

	world := mpi.NewWorld(cfg.Workers)
	// Route algorithm-agnostic collectives (scalar loss sync) through the
	// run's configured algorithm as well.
	world.SetDefaultAlgo(cfg.Algo)
	if cfg.Tracer != nil {
		world.SetTracer(cfg.Tracer)
	}
	if cfg.Registry != nil {
		world.RegisterMetrics(cfg.Registry)
	}
	var out DDPResult
	start := time.Now()
	err := world.Run(func(c *mpi.Comm) error {
		model := build()
		var tr distdl.Stepper
		if cfg.ZeRO {
			tr = distdl.New(c, model, loss, nil, distdl.WithZeRO(),
				distdl.WithAlgo(cfg.Algo), distdl.WithSchedule(sched), distdl.WithTracer(cfg.Tracer))
		} else {
			tr = distdl.New(c, model, loss, nn.NewSGD(0.9, 1e-4),
				distdl.WithAlgo(cfg.Algo), distdl.WithCompression(comp), distdl.WithSchedule(sched),
				distdl.WithTracer(cfg.Tracer), distdl.WithBucketBytes(cfg.BucketBytes),
				distdl.WithOverlap(cfg.Overlap))
		}
		plain, _ := tr.(*distdl.Trainer)
		var last float64
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			shard := distdl.Shard(len(split.Train), cfg.Seed+int64(epoch), c.Rank(), cfg.Workers)
			for _, batch := range distdl.Batches(shard, cfg.Batch) {
				idx := make([]int, len(batch))
				for i, b := range batch {
					idx[i] = split.Train[b]
				}
				bx, by := distdl.GatherBatch(xs, ys, idx)
				last = tr.Step(bx, by)
			}
		}
		if c.Rank() == 0 {
			out.FinalLoss = last
			out.Steps = tr.StepCount()
			out.CommFraction = tr.CommFraction()
			if plain != nil {
				out.GradBytes = plain.GradBytesSent
				out.OverlapRatio = plain.OverlapRatio()
			}
			out.TrainMetric = evalFn(model, split.Train)
			if len(split.Val) > 0 {
				out.ValMetric = evalFn(model, split.Val)
			}
		}
		return nil
	})
	if err != nil {
		panic(err) // ranks only return nil here
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out
}

// ImputerKind selects the §IV-B model variant.
type ImputerKind string

// Imputer variants: the paper's GRU, its 1-D CNN alternative, and the
// GRU-D extension from the related work (Che et al. [39]).
const (
	ImputerGRU  ImputerKind = "gru"
	ImputerCNN  ImputerKind = "cnn"
	ImputerGRUD ImputerKind = "grud"
)

// TrainGRUImputer trains a §IV-B imputation model with Adam. The model is
// fitted on trainTask's hidden positions and scored on evalTask's — the
// two tasks hide *different* random positions of the same stays, so the
// evaluation measures generalization, not memorization.
func TrainGRUImputer(trainTask, evalTask *data.ImputationTask, epochs int, lr float64, kind ImputerKind, seed int64) (evalMAE float64, model *nn.Sequential) {
	rng := rand.New(rand.NewSource(seed))
	features := trainTask.Input.Dim(2)
	switch kind {
	case ImputerCNN:
		model = nn.Conv1DImputer(rng, features)
	case ImputerGRUD:
		model = nn.GRUDImputer(rng, features)
	default:
		model = nn.GRUImputer(rng, features)
	}
	opt := nn.NewAdam()
	loss := nn.MaskedMAE{Mask: trainTask.EvalMask}
	for e := 0; e < epochs; e++ {
		model.ZeroGrads()
		pred := model.Forward(trainTask.Input, true)
		_, grad := loss.Forward(pred, trainTask.Target)
		model.Backward(grad)
		nn.ClipGradNorm(model.Params(), 5)
		opt.Step(model.Params(), lr)
	}
	pred := model.Forward(evalTask.Input, false)
	return evalTask.MAEOn(pred), model
}
