package core

import "sync"

// cachedRun memoizes Quick-scale experiment results so the many
// shape-assertion tests share one execution per experiment instead of
// re-training models per test.
var (
	cacheMu sync.Mutex
	cache   = map[string]Result{}
)

func cachedRun(id string) Result {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[id]; ok {
		return r
	}
	r, err := RunExperiment(id, Quick)
	if err != nil {
		panic(err)
	}
	cache[id] = r
	return r
}
