// Package core is the public facade of the reproduction: it composes the
// substrate packages (msa, mpi, nn, distdl, data, svm, qa, sched, storage,
// perfmodel) into the high-level operations a user of the MSA performs —
// building a system description, training models data-parallel across
// simulated modules, and regenerating every table and figure of the paper
// through the experiment harness (E1–E13, indexed in DESIGN.md).
package core

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by every experiment
// report. Measured numbers are labeled "meas:" and model projections
// "model:" at the row level by convention (see DESIGN.md §5).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cell counts beyond the header are allowed but
// trimmed in rendering.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row built with fmt.Sprintf on each (format, arg) pair is
// too rigid; instead it takes pre-rendered cells via fmt.Sprint on args.
func (t *Table) Addf(format string, args ...interface{}) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i := 0; i < cols && i < len(row); i++ {
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Result is one experiment's output: a human-readable report plus the
// key metrics tests and EXPERIMENTS.md assertions consume.
type Result struct {
	ID      string
	Title   string
	Report  string
	Metrics map[string]float64
}

// Metric fetches a named metric, panicking on absence (experiments own
// their metric vocabulary; a typo is a bug).
func (r Result) Metric(name string) float64 {
	v, ok := r.Metrics[name]
	if !ok {
		panic(fmt.Sprintf("core: experiment %s has no metric %q", r.ID, name))
	}
	return v
}
