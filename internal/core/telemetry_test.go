package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// TestDDPChromeTraceExport is the end-to-end observability acceptance
// check: a 4-rank training run must produce a valid Chrome trace-event
// JSON with one distinct track per rank, collective spans tagged with
// payload bytes and the resolved algorithm, and a Prometheus text dump
// carrying per-kind collective counters.
func TestDDPChromeTraceExport(t *testing.T) {
	// 32 samples → 24 train → an even 6 per rank: synchronous DDP needs
	// every rank to take the same number of steps.
	ds := data.GenMultispectral(data.MultispectralConfig{Samples: 32, Seed: 5})
	split := data.TrainValSplit(32, 0.25, 6)
	tracer := telemetry.NewTracer(0)
	reg := telemetry.NewRegistry()
	res := TrainResNetBigEarthNet(DDPConfig{Workers: 4, Epochs: 1, Batch: 4,
		BaseLR: 0.01, Algo: mpi.AlgoRing, Seed: 7, Tracer: tracer, Registry: reg}, ds, split)
	if res.Steps <= 0 {
		t.Fatalf("run did not train: %+v", res)
	}

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace telemetry.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	tids := map[int]bool{}
	collectives := 0
	ringAllreduces := 0
	steps := 0
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		tids[ev.Tid] = true
		if ev.Dur < 0 {
			t.Fatalf("negative duration in event %q", ev.Name)
		}
		switch ev.Cat {
		case string(telemetry.CatCollective):
			collectives++
			if ev.Name == "allreduce" {
				b, _ := ev.Args["bytes"].(float64)
				if b <= 0 {
					t.Fatalf("allreduce span missing payload bytes: %+v", ev)
				}
				attr, _ := ev.Args["attr"].(string)
				if attr == "" {
					t.Fatalf("allreduce span missing algorithm attr: %+v", ev)
				}
				// Gradient syncs are explicitly ring; loss syncs resolve
				// AlgoAuto on their own.
				if attr == string(mpi.AlgoRing) {
					ringAllreduces++
				}
			}
		case string(telemetry.CatStep):
			steps++
		}
	}
	if len(tids) < 4 {
		t.Fatalf("trace has %d distinct tracks, want >= 4 (one per rank)", len(tids))
	}
	if collectives == 0 {
		t.Fatal("no collective spans in trace")
	}
	if ringAllreduces == 0 {
		t.Fatal("no ring-tagged gradient allreduce spans in trace")
	}
	if steps == 0 {
		t.Fatal("no step spans in trace")
	}
	names := tracer.TrackNames()
	for r := 0; r < 4; r++ {
		if names[r] == "" {
			t.Fatalf("rank %d track unnamed", r)
		}
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := prom.String()
	for _, want := range []string{
		`msa_mpi_collectives_total{type="allreduce"}`,
		`msa_mpi_collectives_total{type="bcast"}`,
		"msa_mpi_world_size 4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus dump missing %q:\n%s", want, text)
		}
	}
}
