package core

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/nn"
	"repro/internal/perfmodel"
)

// E6CovidNet reproduces §IV-A: the COVID-Net chest-X-ray screening study —
// 3-class training with per-class sensitivity (the COVID-Net headline
// metric) plus the A100-vs-V100 training-time projection the paper
// attributes to JUWELS' newer GPUs.
func E6CovidNet(scale Scale) Result {
	samples, epochs, workers := 48, 10, 2
	if scale == Full {
		samples, epochs, workers = 300, 12, 4
	}
	ds := data.GenCXR(data.CXRConfig{Samples: samples, Seed: 51})
	split := data.TrainValSplit(samples, 0.25, 52)

	res := TrainCovidNet(DDPConfig{Workers: workers, Epochs: epochs, Batch: 4,
		BaseLR: 0.02, Warmup: 5, Algo: mpi.AlgoRing, Seed: 53}, ds, split)

	// Per-class sensitivity on the validation split needs a fresh model
	// evaluation; retrain single-worker deterministically for the matrix.
	resEval := trainCovidForConfusion(ds, split, epochs)
	cm := resEval.confusion
	rec := nn.PerClassRecall(cm)
	prec := nn.PerClassPrecision(cm)

	tb := NewTable("COVID-Net-mini on synthetic COVIDx (meas)",
		"metric", "value")
	tb.Add("val accuracy (distributed)", fmt.Sprintf("%.3f", res.ValMetric))
	tb.Add("train accuracy", fmt.Sprintf("%.3f", res.TrainMetric))
	for c := 0; c < data.CXRClasses; c++ {
		tb.Add("sensitivity "+data.CXRClassNames[c], fmt.Sprintf("%.3f", rec[c]))
		tb.Add("precision "+data.CXRClassNames[c], fmt.Sprintf("%.3f", prec[c]))
	}

	// GPU-generation projection (§IV-A: A100 tensor cores train COVID-Net
	// "significantly faster" than the previous generation).
	w := perfmodel.Workload{Name: "covidnet-train", Class: perfmodel.ClassDLTraining,
		PrefersGPU: true, Flops: 5e15, Bytes: 1e12, ParallelFrac: 0.99, MemoryGB: 16}
	nodeV100 := msa.NodeSpec{CPU: msa.Skylake6148, Sockets: 2, MemGB: 192, MemBWGBs: 256,
		Accels: []msa.AccelAttach{{Spec: msa.V100, Count: 4}}}
	nodeA100 := msa.NodeSpec{CPU: msa.EPYC7402, Sockets: 2, MemGB: 512, MemBWGBs: 410,
		Accels: []msa.AccelAttach{{Spec: msa.A100, Count: 4}}}
	tV := perfmodel.NodeTime(w, nodeV100)
	tA := perfmodel.NodeTime(w, nodeA100)
	gen := NewTable("GPU generation projection (model)",
		"node", "train time s", "speedup vs V100")
	gen.Add("4× V100 (JUWELS cluster)", fmt.Sprintf("%.0f", tV), "1.00")
	gen.Add("4× A100 (JUWELS booster)", fmt.Sprintf("%.0f", tA), fmt.Sprintf("%.2f", tV/tA))

	return Result{
		ID: "E6", Title: "COVID-Net chest X-ray screening (§IV-A)",
		Report: tb.String() + "\n" + gen.String(),
		Metrics: map[string]float64{
			"val_acc":      res.ValMetric,
			"covid_recall": rec[data.CXRCovid],
			"a100_speedup": tV / tA,
			"v100_time":    tV,
			"a100_time":    tA,
		},
	}
}

type covidEval struct {
	confusion [][]int
}

// trainCovidForConfusion trains a single-replica model to extract the
// validation confusion matrix.
func trainCovidForConfusion(ds *data.CXRDataset, split data.Split, epochs int) covidEval {
	res := covidEval{}
	oneHot := ds.OneHotLabels()
	w := mpi.NewWorld(1)
	if err := w.Run(func(c *mpi.Comm) error {
		cfg := DDPConfig{Workers: 1, Epochs: epochs, Batch: 4, BaseLR: 0.02, Seed: 54}
		_ = cfg
		model := nn.CovidNetMini(newRNG(54), ds.X.Dim(2), data.CXRClasses)
		opt := nn.NewSGD(0.9, 1e-4)
		loss := nn.SoftmaxCrossEntropy{}
		for e := 0; e < epochs; e++ {
			for _, batch := range batchIdx(split.Train, 4) {
				bx := data.SelectRows(ds.X, batch)
				by := data.SelectRows(oneHot, batch)
				model.ZeroGrads()
				out := model.Forward(bx, true)
				_, grad := loss.Forward(out, by)
				model.Backward(grad)
				opt.Step(model.Params(), 0.02)
			}
		}
		vx := data.SelectRows(ds.X, split.Val)
		vl := data.SelectLabels(ds.Labels, split.Val)
		res.confusion = nn.ConfusionMatrix(model.Forward(vx, false), vl, data.CXRClasses)
		return nil
	}); err != nil {
		panic(err)
	}
	return res
}

func batchIdx(idx []int, size int) [][]int {
	var out [][]int
	for lo := 0; lo < len(idx); lo += size {
		hi := lo + size
		if hi > len(idx) {
			hi = len(idx)
		}
		out = append(out, idx[lo:hi])
	}
	return out
}

// E7GRUImputation reproduces §IV-B: the 2×GRU(32) imputation model
// against the 1-D CNN and the forward-fill clinical baseline on
// MIMIC-III-like ICU time series, scored by MAE at hidden positions.
func E7GRUImputation(scale Scale) Result {
	patients, epochs := 24, 300
	if scale == Full {
		patients, epochs = 100, 600
	}
	ds := data.GenICU(data.ICUConfig{Patients: patients, Steps: 32, Seed: 81, ARDSFraction: 0.4})
	trainTask := ds.MakeImputationTask(data.ChPaO2, 0.25, 82)
	evalTask := ds.MakeImputationTask(data.ChPaO2, 0.25, 83)

	// The paper's GRU uses Adam at lr 1e-4 over many passes of MIMIC-III;
	// equivalent convergence at synthetic scale needs a larger rate within
	// the epoch budget (the CNN prefers a slightly hotter one).
	gruMAE, _ := TrainGRUImputer(trainTask, evalTask, epochs, 5e-3, ImputerGRU, 84)
	cnnMAE, _ := TrainGRUImputer(trainTask, evalTask, epochs, 1e-2, ImputerCNN, 84)
	grudMAE, _ := TrainGRUImputer(trainTask, evalTask, epochs, 5e-3, ImputerGRUD, 84)
	ffMAE := evalTask.MAEOn(evalTask.ForwardFillBaseline())

	tb := NewTable("PaO₂ imputation MAE at hidden positions (meas, z-scored units)",
		"model", "MAE")
	tb.Add("forward fill (clinical baseline)", fmt.Sprintf("%.4f", ffMAE))
	tb.Add("1-D CNN (2×Conv1D(32))", fmt.Sprintf("%.4f", cnnMAE))
	tb.Add("GRU (2×GRU(32), dropout .2)", fmt.Sprintf("%.4f", gruMAE))
	tb.Add("GRU-D (input decay, ref [39])", fmt.Sprintf("%.4f", grudMAE))

	arch := NewTable("Model architecture (paper §IV-B / Fig. 4)", "layer", "output shape")
	arch.Add("Input", fmt.Sprintf("(N, T, %d)", data.ICUChannels))
	arch.Add("GRU(32) + dropout 0.2", "(N, T, 32)")
	arch.Add("GRU(32) + dropout 0.2", "(N, T, 32)")
	arch.Add("Dense(1)", "(N, T, 1)")

	return Result{
		ID: "E7", Title: "GRU time-series imputation for ARDS monitoring (§IV-B)",
		Report: tb.String() + "\n" + arch.String(),
		Metrics: map[string]float64{
			"mae_gru":   gruMAE,
			"mae_cnn":   cnnMAE,
			"mae_grud":  grudMAE,
			"mae_ffill": ffMAE,
		},
	}
}
