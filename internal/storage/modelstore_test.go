package storage

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestModelStoreRoundTrip exercises the training→serving hand-off: a
// "trained" model (with exercised batch-norm statistics) is checkpointed,
// then restored into a differently-initialized replica, which must
// produce bit-identical inference outputs.
func TestModelStoreRoundTrip(t *testing.T) {
	store, err := NewModelStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}

	build := func(seed int64) *nn.Sequential {
		return nn.ResNetMini(rand.New(rand.NewSource(seed)), 2, 4, 4, 1)
	}
	trained := build(1)
	// A training-mode forward moves the batch-norm running statistics off
	// their initialization, so the round trip covers state, not just
	// parameters.
	x := tensor.Randn(rand.New(rand.NewSource(2)), 1, 3, 2, 8, 8)
	trained.Forward(x, true)

	if store.Exists("resnet") {
		t.Fatal("checkpoint must not exist before Save")
	}
	if err := store.Save("resnet", trained); err != nil {
		t.Fatal(err)
	}
	if !store.Exists("resnet") {
		t.Fatal("checkpoint missing after Save")
	}

	replica := build(77) // different init: weights must come from the store
	if err := store.LoadInto("resnet", replica); err != nil {
		t.Fatal(err)
	}
	want := trained.Forward(x, false)
	got := replica.Forward(x, false)
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("restored replica diverges at element %d: %g vs %g", i, v, want.Data()[i])
		}
	}

	// Blob is the fan-out path for many replicas: one read, N restores.
	blob, err := store.Blob("resnet")
	if err != nil {
		t.Fatal(err)
	}
	replica2 := build(78)
	if err := nn.LoadModel(replica2, blob); err != nil {
		t.Fatal(err)
	}

	// Structural mismatch must be rejected, not silently accepted.
	wrong := nn.MLP(rand.New(rand.NewSource(3)), 4, 2)
	if err := store.LoadInto("resnet", wrong); err == nil {
		t.Fatal("loading a ResNet checkpoint into an MLP must fail")
	}
	// Missing checkpoint is an error.
	if err := store.LoadInto("nope", build(1)); err == nil {
		t.Fatal("loading a missing checkpoint must fail")
	}
}

// TestModelStoreBlobLifecycle covers the raw-blob path the ft subsystem
// uses for trainer snapshots: SaveBlob/Blob round-trip, lexically sorted
// List, and Delete for retention.
func TestModelStoreBlobLifecycle(t *testing.T) {
	store, err := NewModelStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("fresh store should list empty, got %v, %v", names, err)
	}
	for _, n := range []string{"ft-0000000040", "ft-0000000020", "ft-0000000100"} {
		if err := store.SaveBlob(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	names, err = store.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ft-0000000020", "ft-0000000040", "ft-0000000100"}
	if len(names) != 3 {
		t.Fatalf("List returned %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List order %v, want %v (zero-padded names sort chronologically)", names, want)
		}
	}
	blob, err := store.Blob("ft-0000000040")
	if err != nil || string(blob) != "ft-0000000040" {
		t.Fatalf("Blob round trip: %q, %v", blob, err)
	}
	if err := store.Delete("ft-0000000020"); err != nil {
		t.Fatal(err)
	}
	if store.Exists("ft-0000000020") {
		t.Fatal("deleted checkpoint still exists")
	}
	if err := store.Delete("ft-0000000020"); err == nil {
		t.Fatal("deleting a missing checkpoint should error")
	}
	// Overwrite is atomic and keeps the newest payload.
	if err := store.SaveBlob("ft-0000000040", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	blob, _ = store.Blob("ft-0000000040")
	if string(blob) != "v2" {
		t.Fatalf("overwrite lost: %q", blob)
	}
}
