package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestModelStoreRoundTrip exercises the training→serving hand-off: a
// "trained" model (with exercised batch-norm statistics) is checkpointed,
// then restored into a differently-initialized replica, which must
// produce bit-identical inference outputs.
func TestModelStoreRoundTrip(t *testing.T) {
	store, err := NewModelStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}

	build := func(seed int64) *nn.Sequential {
		return nn.ResNetMini(rand.New(rand.NewSource(seed)), 2, 4, 4, 1)
	}
	trained := build(1)
	// A training-mode forward moves the batch-norm running statistics off
	// their initialization, so the round trip covers state, not just
	// parameters.
	x := tensor.Randn(rand.New(rand.NewSource(2)), 1, 3, 2, 8, 8)
	trained.Forward(x, true)

	if store.Exists("resnet") {
		t.Fatal("checkpoint must not exist before Save")
	}
	if err := store.Save("resnet", trained); err != nil {
		t.Fatal(err)
	}
	if !store.Exists("resnet") {
		t.Fatal("checkpoint missing after Save")
	}

	replica := build(77) // different init: weights must come from the store
	if err := store.LoadInto("resnet", replica); err != nil {
		t.Fatal(err)
	}
	want := trained.Forward(x, false)
	got := replica.Forward(x, false)
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("restored replica diverges at element %d: %g vs %g", i, v, want.Data()[i])
		}
	}

	// Blob is the fan-out path for many replicas: one read, N restores.
	blob, err := store.Blob("resnet")
	if err != nil {
		t.Fatal(err)
	}
	replica2 := build(78)
	if err := nn.LoadModel(replica2, blob); err != nil {
		t.Fatal(err)
	}

	// Structural mismatch must be rejected, not silently accepted.
	wrong := nn.MLP(rand.New(rand.NewSource(3)), 4, 2)
	if err := store.LoadInto("resnet", wrong); err == nil {
		t.Fatal("loading a ResNet checkpoint into an MLP must fail")
	}
	// Missing checkpoint is an error.
	if err := store.LoadInto("nope", build(1)); err == nil {
		t.Fatal("loading a missing checkpoint must fail")
	}
}

// TestModelStoreBlobLifecycle covers the raw-blob path the ft subsystem
// uses for trainer snapshots: SaveBlob/Blob round-trip, lexically sorted
// List, and Delete for retention.
func TestModelStoreBlobLifecycle(t *testing.T) {
	store, err := NewModelStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("fresh store should list empty, got %v, %v", names, err)
	}
	for _, n := range []string{"ft-0000000040", "ft-0000000020", "ft-0000000100"} {
		if err := store.SaveBlob(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	names, err = store.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ft-0000000020", "ft-0000000040", "ft-0000000100"}
	if len(names) != 3 {
		t.Fatalf("List returned %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List order %v, want %v (zero-padded names sort chronologically)", names, want)
		}
	}
	blob, err := store.Blob("ft-0000000040")
	if err != nil || string(blob) != "ft-0000000040" {
		t.Fatalf("Blob round trip: %q, %v", blob, err)
	}
	if err := store.Delete("ft-0000000020"); err != nil {
		t.Fatal(err)
	}
	if store.Exists("ft-0000000020") {
		t.Fatal("deleted checkpoint still exists")
	}
	if err := store.Delete("ft-0000000020"); err == nil {
		t.Fatal("deleting a missing checkpoint should error")
	}
	// Overwrite is atomic and keeps the newest payload.
	if err := store.SaveBlob("ft-0000000040", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	blob, _ = store.Blob("ft-0000000040")
	if string(blob) != "v2" {
		t.Fatalf("overwrite lost: %q", blob)
	}
}

// TestModelStoreConcurrentSaveLoad hammers one checkpoint name with
// concurrent writers (distinct payloads) and readers: every read must
// observe exactly one writer's payload in full — never a torn mix, never
// a partial file. This is the crash-safety contract the fleet registry
// leans on when a publish races a replica warm-up read.
func TestModelStoreConcurrentSaveLoad(t *testing.T) {
	store, err := NewModelStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers, rounds = 4, 4, 50
	// Each writer's payload is self-identifying: 4 KiB of its own tag, so
	// a torn read (half one writer, half another) is detectable.
	payload := func(w int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("writer-%d|", w)), 512)
	}
	if err := store.SaveBlob("hot", payload(0)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := payload(w)
			for i := 0; i < rounds; i++ {
				if err := store.SaveBlob("hot", p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				blob, err := store.Blob("hot")
				if err != nil {
					errs <- err
					return
				}
				if len(blob) != 512*len("writer-0|") {
					errs <- fmt.Errorf("torn read: %d bytes", len(blob))
					return
				}
				first := string(blob[:len("writer-0|")])
				if !bytes.Equal(blob, bytes.Repeat([]byte(first), 512)) {
					errs <- fmt.Errorf("mixed payloads in one read (starts %q)", first)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// No temp-file litter from the racing saves.
	entries, err := os.ReadDir(store.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
