package storage

import (
	"fmt"
	"math"
)

// Checkpoint/restart modelling. The NAM prototype's original purpose was
// "accelerating checkpoint/restart application performance in large-scale
// systems with network attached memory" (Schmidt, paper ref [12]): an
// application periodically flushes its state; writing it to the parallel
// filesystem contends for OST bandwidth, while the NAM absorbs the burst
// at memory speed and drains to the SSSM asynchronously.

// CheckpointPlan describes one application's checkpointing behaviour.
type CheckpointPlan struct {
	Nodes        int     // nodes writing concurrently
	StateGBNode  float64 // checkpoint size per node
	IntervalSec  float64 // compute time between checkpoints
	Checkpoints  int     // how many checkpoints the run takes
	StripePerJob int     // stripe width for SSSM writes
}

// Validate checks the plan's parameters.
func (p CheckpointPlan) Validate() error {
	if p.Nodes < 1 || p.StateGBNode <= 0 || p.IntervalSec <= 0 || p.Checkpoints < 1 {
		return fmt.Errorf("storage: invalid checkpoint plan %+v", p)
	}
	return nil
}

// TotalGB returns the volume of one full checkpoint.
func (p CheckpointPlan) TotalGB() float64 {
	return float64(p.Nodes) * p.StateGBNode
}

// SSSMCheckpointTime returns seconds one checkpoint stall takes when all
// nodes write straight to the parallel filesystem: each node is one
// contending stream.
func (p CheckpointPlan) SSSMCheckpointTime(fs *SSSM) float64 {
	return fs.ReadTime(p.StateGBNode, p.StripePerJob, p.Nodes)
}

// NAMCheckpointTime returns seconds one checkpoint stall takes when nodes
// write to the NAM: the application only blocks for the memory-speed
// write (the NAM drains to the SSSM in the background).
func (p CheckpointPlan) NAMCheckpointTime(nam *NAM) float64 {
	// All nodes share the NAM's bandwidth for the burst.
	perNodeBW := nam.Spec.BWGBs / float64(p.Nodes)
	return p.StateGBNode/perNodeBW + nam.Spec.LatencyUS*1e-6
}

// RunOverhead summarizes a full run's checkpoint cost for one target.
type RunOverhead struct {
	Target        string
	StallPerCkpt  float64
	TotalStall    float64
	RunTime       float64 // compute + stalls
	OverheadRatio float64 // stalls / compute
}

// CompareCheckpointTargets evaluates the plan against the SSSM directly
// and through the NAM, returning both summaries. NAM capacity must hold
// one full checkpoint (double-buffered drains are assumed); an error is
// returned otherwise — the sizing constraint ref [12] discusses.
func CompareCheckpointTargets(p CheckpointPlan, fs *SSSM, nam *NAM) (sssm, viaNAM RunOverhead, err error) {
	if err := p.Validate(); err != nil {
		return RunOverhead{}, RunOverhead{}, err
	}
	if fs == nil || fs.Spec.OSTs <= 0 || fs.Spec.OSTBWGBs <= 0 {
		return RunOverhead{}, RunOverhead{}, fmt.Errorf("storage: SSSM target has no usable bandwidth")
	}
	if nam == nil || nam.Spec.BWGBs <= 0 || nam.Spec.CapacityGB <= 0 {
		return RunOverhead{}, RunOverhead{}, fmt.Errorf("storage: NAM target has no usable bandwidth or capacity")
	}
	if p.TotalGB() > nam.Spec.CapacityGB {
		return RunOverhead{}, RunOverhead{}, fmt.Errorf(
			"storage: checkpoint of %.0f GB exceeds NAM capacity %.0f GB", p.TotalGB(), nam.Spec.CapacityGB)
	}
	compute := p.IntervalSec * float64(p.Checkpoints)
	mk := func(target string, stall float64) RunOverhead {
		total := stall * float64(p.Checkpoints)
		return RunOverhead{
			Target: target, StallPerCkpt: stall, TotalStall: total,
			RunTime: compute + total, OverheadRatio: total / compute,
		}
	}
	// Background drain feasibility: the NAM must empty one checkpoint into
	// the SSSM within the compute interval, or the next burst blocks.
	drain := fs.ReadTime(p.TotalGB(), p.StripePerJob, 1)
	namStall := p.NAMCheckpointTime(nam)
	if drain > p.IntervalSec {
		// Drain-limited: the application absorbs the leftover.
		namStall += drain - p.IntervalSec
	}
	return mk("sssm-direct", p.SSSMCheckpointTime(fs)), mk("via-nam", namStall), nil
}

// Checkpoint-interval selection. With checkpoint stall δ and system MTBF
// M, checkpointing too often wastes time in stalls and too rarely wastes
// time re-executing lost work; the classic first-order optimum is Young's
// τ = sqrt(2δM), refined by Daly's higher-order expansion. These are the
// analytic companions to the measured recovery costs internal/ft reports:
// cmd/msa-ft joins the two into an MTBF-vs-overhead study.

// YoungInterval returns Young's optimal compute time between checkpoints,
// τ = sqrt(2 δ M), for checkpoint stall ckptSec and MTBF mtbfSec. Panics
// on non-positive inputs (matching the package's modelling helpers).
func YoungInterval(ckptSec, mtbfSec float64) float64 {
	if ckptSec <= 0 || mtbfSec <= 0 {
		panic(fmt.Sprintf("storage: YoungInterval needs positive inputs, got δ=%g M=%g", ckptSec, mtbfSec))
	}
	return math.Sqrt(2 * ckptSec * mtbfSec)
}

// DalyInterval returns Daly's higher-order refinement of Young's optimum:
//
//	τ = sqrt(2δM)·[1 + 1/3·sqrt(δ/2M) + 1/9·(δ/2M)] − δ   for δ < 2M
//	τ = M                                                  otherwise
//
// For small δ/M it converges to Young's value; for checkpoint costs
// comparable to the MTBF it degrades gracefully instead of exceeding M.
func DalyInterval(ckptSec, mtbfSec float64) float64 {
	if ckptSec <= 0 || mtbfSec <= 0 {
		panic(fmt.Sprintf("storage: DalyInterval needs positive inputs, got δ=%g M=%g", ckptSec, mtbfSec))
	}
	if ckptSec >= 2*mtbfSec {
		return mtbfSec
	}
	x := ckptSec / (2 * mtbfSec)
	return math.Sqrt(2*ckptSec*mtbfSec)*(1+math.Sqrt(x)/3+x/9) - ckptSec
}

// ExpectedWaste returns the expected fraction of wall time lost to fault
// tolerance when checkpointing every intervalSec of compute: the stall
// share δ/τ, the expected rework after a failure τ/(2M), and the restart
// cost R/M. First-order model, valid for τ ≪ M.
func ExpectedWaste(intervalSec, ckptSec, restartSec, mtbfSec float64) float64 {
	if intervalSec <= 0 || mtbfSec <= 0 || ckptSec < 0 || restartSec < 0 {
		panic(fmt.Sprintf("storage: ExpectedWaste needs positive interval/MTBF, got τ=%g M=%g δ=%g R=%g",
			intervalSec, mtbfSec, ckptSec, restartSec))
	}
	return ckptSec/intervalSec + intervalSec/(2*mtbfSec) + restartSec/mtbfSec
}
