// Package storage models the MSA's storage modules: the Scalable Storage
// Service Module (SSSM — a striped parallel filesystem like the Lustre /
// GPFS installations at JSC, §II-A) and the Network Attached Memory
// prototype (NAM, §II-A: "sharing datasets over the network instead of
// duplicate downloads of datasets by individual research group members").
//
// The bandwidth model captures the two first-order effects of parallel
// filesystems: a single stream is limited by its stripe width, and
// concurrent streams contend for the aggregate OST bandwidth. Experiment
// E12 sweeps both and compares NAM-shared dataset access against
// per-researcher duplicate staging.
package storage

import (
	"fmt"

	"repro/internal/msa"
)

// SSSM is a striped parallel filesystem.
type SSSM struct {
	Spec msa.StorageSpec
}

// NewSSSM validates and wraps a storage spec.
func NewSSSM(spec msa.StorageSpec) *SSSM {
	if spec.OSTs <= 0 || spec.OSTBWGBs <= 0 {
		panic(fmt.Sprintf("storage: invalid SSSM spec %+v", spec))
	}
	return &SSSM{Spec: spec}
}

// AggregateBW returns the filesystem's total bandwidth in GB/s.
func (s *SSSM) AggregateBW() float64 {
	return float64(s.Spec.OSTs) * s.Spec.OSTBWGBs
}

// StreamBW returns the bandwidth one of `readers` concurrent streams
// achieves when each file is striped over `stripe` OSTs: the minimum of
// the stripe-limited single-stream bandwidth and a fair share of the
// aggregate.
func (s *SSSM) StreamBW(stripe, readers int) float64 {
	if stripe < 1 {
		stripe = 1
	}
	if stripe > s.Spec.OSTs {
		stripe = s.Spec.OSTs
	}
	if readers < 1 {
		readers = 1
	}
	single := float64(stripe) * s.Spec.OSTBWGBs
	share := s.AggregateBW() / float64(readers)
	if single < share {
		return single
	}
	return share
}

// ReadTime returns seconds for each of `readers` concurrent streams to
// read sizeGB with the given stripe width.
func (s *SSSM) ReadTime(sizeGB float64, stripe, readers int) float64 {
	if sizeGB < 0 {
		panic("storage: negative size")
	}
	return sizeGB / s.StreamBW(stripe, readers)
}

// NAM is the network-attached-memory dataset cache: far-memory reachable
// by every module over the federation, with LRU eviction when capacity is
// exceeded.
type NAM struct {
	Spec msa.NAMSpec
	// entries in LRU order (front = least recently used).
	lru    []namEntry
	usedGB float64
	// Stats.
	Hits, Misses int
	StagedGB     float64 // data pulled from the SSSM on misses
	ServedGB     float64 // data served from NAM memory
}

type namEntry struct {
	name   string
	sizeGB float64
}

// NewNAM wraps a NAM spec.
func NewNAM(spec msa.NAMSpec) *NAM {
	if spec.CapacityGB <= 0 || spec.BWGBs <= 0 {
		panic(fmt.Sprintf("storage: invalid NAM spec %+v", spec))
	}
	return &NAM{Spec: spec}
}

// UsedGB returns current cache occupancy.
func (n *NAM) UsedGB() float64 { return n.usedGB }

// Contains reports whether a dataset is resident.
func (n *NAM) Contains(name string) bool {
	for _, e := range n.lru {
		if e.name == name {
			return true
		}
	}
	return false
}

// Access reads a dataset through the NAM: a hit serves from NAM memory at
// NAM bandwidth; a miss first stages the dataset from the SSSM (at the
// SSSM's single-stream bandwidth with the given stripe), inserting it
// with LRU eviction, then serves it. Returns the elapsed time.
func (n *NAM) Access(name string, sizeGB float64, src *SSSM, stripe int) float64 {
	if sizeGB > n.Spec.CapacityGB {
		panic(fmt.Sprintf("storage: dataset %s (%.0f GB) exceeds NAM capacity %.0f GB", name, sizeGB, n.Spec.CapacityGB))
	}
	t := n.Spec.LatencyUS * 1e-6
	if n.touch(name) {
		n.Hits++
		n.ServedGB += sizeGB
		return t + sizeGB/n.Spec.BWGBs
	}
	n.Misses++
	// Stage from the SSSM, evicting LRU entries as needed.
	for n.usedGB+sizeGB > n.Spec.CapacityGB && len(n.lru) > 0 {
		ev := n.lru[0]
		n.lru = n.lru[1:]
		n.usedGB -= ev.sizeGB
	}
	n.lru = append(n.lru, namEntry{name: name, sizeGB: sizeGB})
	n.usedGB += sizeGB
	n.StagedGB += sizeGB
	t += src.ReadTime(sizeGB, stripe, 1)
	n.ServedGB += sizeGB
	return t + sizeGB/n.Spec.BWGBs
}

// touch moves an entry to the MRU position, reporting whether it existed.
func (n *NAM) touch(name string) bool {
	for i, e := range n.lru {
		if e.name == name {
			n.lru = append(append(n.lru[:i], n.lru[i+1:]...), e)
			return true
		}
	}
	return false
}

// DuplicateDownloadTime models the workflow the NAM replaces: k group
// members each stage their own copy of the dataset from the SSSM
// concurrently (contending for OST bandwidth). Returns per-member time
// and total bytes moved from storage.
func DuplicateDownloadTime(k int, sizeGB float64, s *SSSM, stripe int) (perMember float64, totalGB float64) {
	if k < 1 {
		panic("storage: need at least one group member")
	}
	return s.ReadTime(sizeGB, stripe, k), sizeGB * float64(k)
}

// SharedNAMTime models the NAM workflow: the dataset is staged once into
// the NAM, then all k members read it from NAM memory (sharing NAM
// bandwidth). Returns the time until every member has the data and total
// bytes moved from storage.
func SharedNAMTime(k int, sizeGB float64, s *SSSM, nam *NAM, stripe int) (perMember float64, totalGB float64) {
	if k < 1 {
		panic("storage: need at least one group member")
	}
	stage := s.ReadTime(sizeGB, stripe, 1)
	// k concurrent readers share NAM bandwidth.
	read := sizeGB / (nam.Spec.BWGBs / float64(k))
	return stage + read + nam.Spec.LatencyUS*1e-6, sizeGB
}
