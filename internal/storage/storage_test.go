package storage

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/msa"
)

func testFS() *SSSM {
	return NewSSSM(msa.StorageSpec{Filesystem: "Lustre", OSTs: 8, OSTBWGBs: 2.5, CapacityPB: 1})
}

func testNAM() *NAM {
	return NewNAM(msa.NAMSpec{CapacityGB: 100, BWGBs: 50, LatencyUS: 3})
}

func TestAggregateBW(t *testing.T) {
	if testFS().AggregateBW() != 20 {
		t.Fatalf("aggregate: %f", testFS().AggregateBW())
	}
}

func TestStreamBWStripeLimited(t *testing.T) {
	fs := testFS()
	// One reader, stripe 2: limited to 5 GB/s even though 20 available.
	if bw := fs.StreamBW(2, 1); bw != 5 {
		t.Fatalf("stripe-limited: %f", bw)
	}
	// Full stripe single reader gets everything.
	if bw := fs.StreamBW(8, 1); bw != 20 {
		t.Fatalf("full stripe: %f", bw)
	}
}

func TestStreamBWContention(t *testing.T) {
	fs := testFS()
	// 8 readers at full stripe share the aggregate.
	if bw := fs.StreamBW(8, 8); bw != 2.5 {
		t.Fatalf("contended: %f", bw)
	}
	// Many narrow readers: stripe limit stops mattering once share < stripe BW.
	if bw := fs.StreamBW(2, 10); bw != 2 {
		t.Fatalf("narrow contended: %f", bw)
	}
}

func TestStreamBWClamps(t *testing.T) {
	fs := testFS()
	if fs.StreamBW(0, 0) != fs.StreamBW(1, 1) {
		t.Fatal("zero stripe/readers must clamp to 1")
	}
	if fs.StreamBW(100, 1) != 20 {
		t.Fatal("stripe beyond OST count must clamp")
	}
}

func TestReadTime(t *testing.T) {
	fs := testFS()
	if rt := fs.ReadTime(100, 8, 1); rt != 5 {
		t.Fatalf("read time: %f", rt)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative size")
		}
	}()
	fs.ReadTime(-1, 1, 1)
}

func TestMoreStripesFasterSingleStream(t *testing.T) {
	fs := testFS()
	prev := math.Inf(1)
	for stripe := 1; stripe <= 8; stripe++ {
		rt := fs.ReadTime(100, stripe, 1)
		if rt > prev {
			t.Fatalf("wider stripe slower at %d: %f > %f", stripe, rt, prev)
		}
		prev = rt
	}
}

func TestNAMHitMissAccounting(t *testing.T) {
	fs := testFS()
	nam := testNAM()
	t1 := nam.Access("bigearthnet", 50, fs, 8)
	if nam.Misses != 1 || nam.Hits != 0 || !nam.Contains("bigearthnet") {
		t.Fatalf("first access must miss: %+v", nam)
	}
	t2 := nam.Access("bigearthnet", 50, fs, 8)
	if nam.Hits != 1 {
		t.Fatal("second access must hit")
	}
	if t2 >= t1 {
		t.Fatalf("hit (%f) must be faster than miss (%f)", t2, t1)
	}
	if nam.StagedGB != 50 || nam.ServedGB != 100 {
		t.Fatalf("traffic accounting: staged=%f served=%f", nam.StagedGB, nam.ServedGB)
	}
}

func TestNAMLRUEviction(t *testing.T) {
	fs := testFS()
	nam := testNAM() // 100 GB capacity
	nam.Access("a", 40, fs, 8)
	nam.Access("b", 40, fs, 8)
	nam.Access("a", 40, fs, 8) // touch a: b becomes LRU
	nam.Access("c", 40, fs, 8) // evicts b
	if !nam.Contains("a") || !nam.Contains("c") || nam.Contains("b") {
		t.Fatalf("LRU eviction wrong: a=%v b=%v c=%v", nam.Contains("a"), nam.Contains("b"), nam.Contains("c"))
	}
	if nam.UsedGB() != 80 {
		t.Fatalf("used: %f", nam.UsedGB())
	}
}

func TestNAMOversizedDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testNAM().Access("huge", 1000, testFS(), 8)
}

// TestNAMBeatsDuplicateDownloads is experiment E12's second half: for a
// research group of k members, shared NAM access must move k× less data
// out of the SSSM and (for meaningful k) finish sooner.
func TestNAMBeatsDuplicateDownloads(t *testing.T) {
	fs := testFS()
	for _, k := range []int{4, 8, 16} {
		nam := testNAM()
		dupTime, dupBytes := DuplicateDownloadTime(k, 50, fs, 4)
		namTime, namBytes := SharedNAMTime(k, 50, fs, nam, 4)
		if namBytes*float64(k) != dupBytes {
			t.Fatalf("k=%d: NAM must move 1/k the data: %f vs %f", k, namBytes, dupBytes)
		}
		if k >= 8 && namTime >= dupTime {
			t.Fatalf("k=%d: NAM (%f s) should beat duplicates (%f s)", k, namTime, dupTime)
		}
	}
}

func TestWorkflowPanicsOnZeroMembers(t *testing.T) {
	for _, f := range []func(){
		func() { DuplicateDownloadTime(0, 1, testFS(), 1) },
		func() { SharedNAMTime(0, 1, testFS(), testNAM(), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConstructorsValidate(t *testing.T) {
	for _, f := range []func(){
		func() { NewSSSM(msa.StorageSpec{}) },
		func() { NewNAM(msa.NAMSpec{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: stream bandwidth never exceeds either the stripe limit or the
// aggregate, and is always positive.
func TestStreamBWBoundsProperty(t *testing.T) {
	fs := testFS()
	f := func(stripeRaw, readersRaw uint8) bool {
		stripe := 1 + int(stripeRaw)%16
		readers := 1 + int(readersRaw)%64
		bw := fs.StreamBW(stripe, readers)
		if bw <= 0 {
			return false
		}
		eff := stripe
		if eff > fs.Spec.OSTs {
			eff = fs.Spec.OSTs
		}
		return bw <= float64(eff)*fs.Spec.OSTBWGBs+1e-9 && bw <= fs.AggregateBW()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPlanValidate(t *testing.T) {
	good := CheckpointPlan{Nodes: 8, StateGBNode: 4, IntervalSec: 600, Checkpoints: 10, StripePerJob: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []CheckpointPlan{
		{Nodes: 0, StateGBNode: 4, IntervalSec: 600, Checkpoints: 10},
		{Nodes: 8, StateGBNode: 0, IntervalSec: 600, Checkpoints: 10},
		{Nodes: 8, StateGBNode: 4, IntervalSec: 0, Checkpoints: 10},
		{Nodes: 8, StateGBNode: 4, IntervalSec: 600, Checkpoints: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
	if good.TotalGB() != 32 {
		t.Fatalf("total: %f", good.TotalGB())
	}
}

// TestNAMCheckpointBeatsDirect reproduces the ref [12] claim: NAM-buffered
// checkpoints stall the application less than direct parallel-filesystem
// writes.
func TestNAMCheckpointBeatsDirect(t *testing.T) {
	fs := testFS()   // 20 GB/s aggregate
	nam := testNAM() // 50 GB/s memory
	plan := CheckpointPlan{Nodes: 16, StateGBNode: 4, IntervalSec: 600, Checkpoints: 10, StripePerJob: 4}
	direct, via, err := CompareCheckpointTargets(plan, fs, nam)
	if err != nil {
		t.Fatal(err)
	}
	if via.StallPerCkpt >= direct.StallPerCkpt {
		t.Fatalf("NAM stall %f should beat direct %f", via.StallPerCkpt, direct.StallPerCkpt)
	}
	if via.RunTime >= direct.RunTime || via.OverheadRatio >= direct.OverheadRatio {
		t.Fatalf("NAM run summary should win: %+v vs %+v", via, direct)
	}
}

func TestNAMCheckpointDrainLimited(t *testing.T) {
	fs := testFS()
	nam := testNAM()
	// Checkpoints arrive faster than the SSSM can drain: the surplus
	// stalls the application.
	fast := CheckpointPlan{Nodes: 16, StateGBNode: 4, IntervalSec: 1, Checkpoints: 3, StripePerJob: 4}
	_, via, err := CompareCheckpointTargets(fast, fs, nam)
	if err != nil {
		t.Fatal(err)
	}
	slow := fast
	slow.IntervalSec = 600
	_, viaSlow, err := CompareCheckpointTargets(slow, fs, nam)
	if err != nil {
		t.Fatal(err)
	}
	if via.StallPerCkpt <= viaSlow.StallPerCkpt {
		t.Fatalf("drain-limited plan must stall more: %f vs %f", via.StallPerCkpt, viaSlow.StallPerCkpt)
	}
}

func TestCheckpointRejectsOversizedState(t *testing.T) {
	plan := CheckpointPlan{Nodes: 100, StateGBNode: 10, IntervalSec: 60, Checkpoints: 2, StripePerJob: 4}
	if _, _, err := CompareCheckpointTargets(plan, testFS(), testNAM()); err == nil {
		t.Fatal("1000 GB checkpoint must exceed the 100 GB NAM")
	}
}
