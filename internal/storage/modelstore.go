package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/nn"
)

// ModelStore persists trained-model checkpoints as files under one
// directory — the training→serving hand-off of §II-A: the CM trains and
// writes the checkpoint to shared storage (SSSM), and the serving tier on
// the ESB warm-starts by restoring it, so serving never needs an
// in-process training run. Checkpoints are nn.SaveModel blobs (parameters
// plus batch-norm running statistics), which restore identical inference
// behaviour.
type ModelStore struct {
	Dir string
}

// NewModelStore opens (creating if needed) a checkpoint directory.
func NewModelStore(dir string) (*ModelStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating model store %s: %w", dir, err)
	}
	return &ModelStore{Dir: dir}, nil
}

func (s *ModelStore) path(name string) string {
	return filepath.Join(s.Dir, name+".ckpt")
}

// Exists reports whether a checkpoint with this name is present.
func (s *ModelStore) Exists(name string) bool {
	_, err := os.Stat(s.path(name))
	return err == nil
}

// Save checkpoints the model under name. The write goes through a
// temporary file and rename, so concurrent readers never observe a
// partial checkpoint.
func (s *ModelStore) Save(name string, m *nn.Sequential) error {
	blob, err := nn.SaveModel(m)
	if err != nil {
		return err
	}
	return s.SaveBlob(name, blob)
}

// SaveBlob stores raw checkpoint bytes under name with the same atomic
// temp-file + rename protocol as Save. This is the path fault-tolerant
// training uses: its blobs carry optimizer state and step counters on top
// of the model, so the store must not care about the payload format.
//
// The temp file is uniquely named (os.CreateTemp) and fsynced before the
// rename: a fixed ".tmp" path lets two concurrent saves of the same name
// interleave writes into one file and publish the torn result, and an
// unsynced rename can commit an empty file across a crash. With both
// fixed, a concurrent Blob/LoadInto observes either the old or the new
// checkpoint in full — never a partial one (the fleet registry publishes
// versions through this guarantee).
func (s *ModelStore) SaveBlob(name string, blob []byte) error {
	f, err := os.CreateTemp(s.Dir, filepath.Base(name)+".*.tmp")
	if err != nil {
		return fmt.Errorf("storage: creating temp for checkpoint %s: %w", name, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(blob); err != nil {
		return cleanup(fmt.Errorf("storage: writing checkpoint %s: %w", name, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("storage: syncing checkpoint %s: %w", name, err))
	}
	if err := f.Close(); err != nil {
		return cleanup(fmt.Errorf("storage: closing checkpoint %s: %w", name, err))
	}
	if err := os.Rename(tmp, s.path(name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: committing checkpoint %s: %w", name, err)
	}
	return nil
}

// List returns the names of all stored checkpoints, sorted lexically —
// with zero-padded step suffixes that is also chronological order, which
// retention policies rely on.
func (s *ModelStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, fmt.Errorf("storage: listing model store %s: %w", s.Dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := strings.CutSuffix(e.Name(), ".ckpt"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes a named checkpoint (used by retention policies).
func (s *ModelStore) Delete(name string) error {
	if err := os.Remove(s.path(name)); err != nil {
		return fmt.Errorf("storage: deleting checkpoint %s: %w", name, err)
	}
	return nil
}

// Blob returns the raw checkpoint bytes (for replicating one read across
// many serving replicas without re-touching the filesystem).
func (s *ModelStore) Blob(name string) ([]byte, error) {
	blob, err := os.ReadFile(s.path(name))
	if err != nil {
		return nil, fmt.Errorf("storage: reading checkpoint %s: %w", name, err)
	}
	return blob, nil
}

// LoadInto restores the named checkpoint into a structurally identical
// model (parameter names and shapes must match).
func (s *ModelStore) LoadInto(name string, m *nn.Sequential) error {
	blob, err := s.Blob(name)
	if err != nil {
		return err
	}
	return nn.LoadModel(m, blob)
}
