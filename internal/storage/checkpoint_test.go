package storage

import (
	"math"
	"strings"
	"testing"

	"repro/internal/msa"
)

func testPlan() CheckpointPlan {
	return CheckpointPlan{Nodes: 16, StateGBNode: 4, IntervalSec: 600, Checkpoints: 10, StripePerJob: 4}
}

func ckptFS() *SSSM {
	return NewSSSM(msa.StorageSpec{Filesystem: "test", OSTs: 16, OSTBWGBs: 2, CapacityPB: 1, MetadataOps: 1000})
}

func ckptNAM(capGB float64) *NAM {
	return NewNAM(msa.NAMSpec{CapacityGB: capGB, BWGBs: 40, LatencyUS: 3})
}

func TestCompareCheckpointTargetsHappyPath(t *testing.T) {
	s, n, err := CompareCheckpointTargets(testPlan(), ckptFS(), ckptNAM(1024))
	if err != nil {
		t.Fatal(err)
	}
	if s.Target != "sssm-direct" || n.Target != "via-nam" {
		t.Fatalf("unexpected targets %q %q", s.Target, n.Target)
	}
	if n.StallPerCkpt >= s.StallPerCkpt {
		t.Fatalf("NAM stall %.3fs should beat direct SSSM stall %.3fs", n.StallPerCkpt, s.StallPerCkpt)
	}
	if s.OverheadRatio <= 0 || n.OverheadRatio <= 0 {
		t.Fatal("overhead ratios must be positive")
	}
}

func TestCompareCheckpointTargetsValidatesPlan(t *testing.T) {
	cases := map[string]func(*CheckpointPlan){
		"zero interval":    func(p *CheckpointPlan) { p.IntervalSec = 0 },
		"zero nodes":       func(p *CheckpointPlan) { p.Nodes = 0 },
		"zero state":       func(p *CheckpointPlan) { p.StateGBNode = 0 },
		"zero checkpoints": func(p *CheckpointPlan) { p.Checkpoints = 0 },
		"negative size":    func(p *CheckpointPlan) { p.StateGBNode = -1 },
	}
	for name, mutate := range cases {
		p := testPlan()
		mutate(&p)
		if _, _, err := CompareCheckpointTargets(p, ckptFS(), ckptNAM(1024)); err == nil {
			t.Errorf("%s: expected a Validate error", name)
		}
	}
}

func TestCompareCheckpointTargetsZeroBandwidthDevices(t *testing.T) {
	// Constructed directly (bypassing New*) to model a dead or
	// misdescribed device; the comparison must refuse, not divide by zero.
	deadNAM := &NAM{Spec: msa.NAMSpec{CapacityGB: 1024, BWGBs: 0}}
	if _, _, err := CompareCheckpointTargets(testPlan(), ckptFS(), deadNAM); err == nil {
		t.Fatal("zero-bandwidth NAM accepted")
	}
	deadFS := &SSSM{Spec: msa.StorageSpec{OSTs: 0, OSTBWGBs: 2}}
	if _, _, err := CompareCheckpointTargets(testPlan(), deadFS, ckptNAM(1024)); err == nil {
		t.Fatal("zero-OST SSSM accepted")
	}
	if _, _, err := CompareCheckpointTargets(testPlan(), nil, ckptNAM(1024)); err == nil {
		t.Fatal("nil SSSM accepted")
	}
	if _, _, err := CompareCheckpointTargets(testPlan(), ckptFS(), nil); err == nil {
		t.Fatal("nil NAM accepted")
	}
}

func TestCompareCheckpointTargetsCapacity(t *testing.T) {
	p := testPlan() // 64 GB per checkpoint
	_, _, err := CompareCheckpointTargets(p, ckptFS(), ckptNAM(32))
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("expected a capacity error, got %v", err)
	}
}

func TestCompareCheckpointTargetsDrainLimited(t *testing.T) {
	// Shrink the interval below the SSSM drain time: the NAM stall must
	// absorb the leftover drain, raising it above the pure burst time.
	p := testPlan()
	p.IntervalSec = 1 // drain of 64 GB at 2 GB/s single stream ≫ 1 s
	s, n, err := CompareCheckpointTargets(p, ckptFS(), ckptNAM(1024))
	if err != nil {
		t.Fatal(err)
	}
	burst := p.NAMCheckpointTime(ckptNAM(1024))
	if n.StallPerCkpt <= burst {
		t.Fatalf("drain-limited stall %.3fs should exceed burst %.3fs", n.StallPerCkpt, burst)
	}
	_ = s
}

func TestYoungAndDalyIntervals(t *testing.T) {
	// Young: sqrt(2·30·7200) ≈ 657.27 s.
	y := YoungInterval(30, 7200)
	if math.Abs(y-657.267) > 0.01 {
		t.Fatalf("Young interval %.3f, want ≈657.267", y)
	}
	// Daly converges to Young for δ ≪ M and stays finite for δ ≥ 2M.
	d := DalyInterval(30, 7200)
	if math.Abs(d-y)/y > 0.05 {
		t.Fatalf("Daly %.3f should be within 5%% of Young %.3f for small δ/M", d, y)
	}
	if got := DalyInterval(100, 40); got != 40 {
		t.Fatalf("Daly with δ ≥ 2M should clamp to M, got %.3f", got)
	}
	// Longer MTBF ⇒ longer interval.
	if YoungInterval(30, 14400) <= y {
		t.Fatal("interval should grow with MTBF")
	}
}

func TestYoungIntervalPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero MTBF")
		}
	}()
	YoungInterval(30, 0)
}

func TestExpectedWaste(t *testing.T) {
	// δ=30, τ=600, R=120, M=7200: waste = 30/600 + 600/14400 + 120/7200.
	want := 30.0/600 + 600.0/14400 + 120.0/7200
	if got := ExpectedWaste(600, 30, 120, 7200); math.Abs(got-want) > 1e-12 {
		t.Fatalf("waste %.6f, want %.6f", got, want)
	}
	// The Young interval minimizes waste against nearby intervals.
	young := YoungInterval(30, 7200)
	at := func(tau float64) float64 { return ExpectedWaste(tau, 30, 120, 7200) }
	if at(young) > at(young*2) || at(young) > at(young/2) {
		t.Fatal("waste should be minimal near the Young interval")
	}
}
