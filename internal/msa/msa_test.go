package msa

import (
	"strings"
	"testing"
)

func TestDEEPValidates(t *testing.T) {
	if err := DEEP().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJUWELSValidates(t *testing.T) {
	if err := JUWELS().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTableIDEEPDAM checks experiment E1: the machine-readable DEEP DAM
// config reproduces every row of the paper's Table I.
func TestTableIDEEPDAM(t *testing.T) {
	dam := DEEP().Module(DataAnalytics)
	if dam == nil {
		t.Fatal("DEEP has no DAM")
	}
	if dam.Nodes() != 16 {
		t.Fatalf("Table I: 16 nodes, got %d", dam.Nodes())
	}
	n := dam.Groups[0].Node
	if n.Sockets != 2 || !strings.Contains(n.CPU.Name, "Cascade Lake") {
		t.Fatalf("Table I: 2x Cascade Lake, got %dx %s", n.Sockets, n.CPU.Name)
	}
	if dam.GPUs() != 16 {
		t.Fatalf("Table I: 16 V100, got %d", dam.GPUs())
	}
	if dam.FPGAs() != 16 {
		t.Fatalf("Table I: 16 STRATIX10, got %d", dam.FPGAs())
	}
	if n.MemGB != 384 {
		t.Fatalf("Table I: 384 GB/node, got %.0f", n.MemGB)
	}
	var gpuMem, fpgaMem float64
	for _, a := range n.Accels {
		switch a.Spec.Class {
		case AccelGPU:
			gpuMem = a.Spec.MemGB
		case AccelFPGA:
			fpgaMem = a.Spec.MemGB
		}
	}
	if gpuMem != 32 || fpgaMem != 32 {
		t.Fatalf("Table I: 32 GB HBM2 + 32 GB FPGA DDR4, got %v/%v", gpuMem, fpgaMem)
	}
	if n.NVMeTB != 3.0 {
		t.Fatalf("Table I: 2x 1.5 TB NVMe, got %.1f TB", n.NVMeTB)
	}
	// §II-B: aggregated 32 TB of NVM across the DAM.
	if dam.TotalNVMTB() != 32 {
		t.Fatalf("aggregate NVM: want 32 TB, got %.0f", dam.TotalNVMTB())
	}
}

func TestRenderTableI(t *testing.T) {
	out := RenderTableI(DEEP().Module(DataAnalytics))
	for _, want := range []string{
		"16 nodes with 2x Intel Xeon Cascade Lake",
		"16 NVIDIA V100 GPU",
		"16 Intel STRATIX10 FPGA PCIe3",
		"384 GB DDR4 CPU memory /node",
		"32 GB DDR4 FPGA memory /node",
		"32 GB HBM2 GPU memory /node",
		"2x 1.5 TB NVMe SSD",
		"aggregate NVM: 32 TB",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTableIPanicsOnWrongModule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RenderTableI(DEEP().Module(ClusterModule))
}

// TestJUWELSAggregates checks experiment E2: the §II-B aggregates.
// "JUWELS ... consist of 2,583 and 940 nodes respectively, totalling
// 122,768 CPU cores and 224 GPUs in the cluster module, and 45,024 CPU
// cores and 3,744 GPUs in the booster module."
func TestJUWELSAggregates(t *testing.T) {
	j := JUWELS()
	cm := j.Module(ClusterModule)
	esb := j.Module(BoosterModule)
	if cm.Nodes() != 2583 {
		t.Fatalf("cluster nodes: want 2583, got %d", cm.Nodes())
	}
	if cm.Cores() != 122768 {
		t.Fatalf("cluster cores: want 122768, got %d", cm.Cores())
	}
	if cm.GPUs() != 224 {
		t.Fatalf("cluster GPUs: want 224, got %d", cm.GPUs())
	}
	if esb.Nodes() != 940 {
		t.Fatalf("booster nodes: want 940, got %d", esb.Nodes())
	}
	if esb.Cores() != 45024 {
		t.Fatalf("booster cores: want 45024, got %d", esb.Cores())
	}
	if esb.GPUs() != 3744 {
		t.Fatalf("booster GPUs: want 3744, got %d", esb.GPUs())
	}
}

func TestDEEPQuantumModuleMatchesPaper(t *testing.T) {
	qm := DEEP().Module(QuantumModule)
	if qm == nil || qm.Quantum == nil {
		t.Fatal("DEEP lacks quantum module")
	}
	// §III-C: "QQ Advantage system using 5000 qubits and 35000 couplers".
	if qm.Quantum.Qubits != 5000 || qm.Quantum.Couplers != 35000 {
		t.Fatalf("Advantage spec: %+v", *qm.Quantum)
	}
}

func TestModuleLookups(t *testing.T) {
	d := DEEP()
	if d.Module(DataAnalytics).Name != "deep-dam" {
		t.Fatal("Module(DAM)")
	}
	if d.ModuleByName("deep-esb") == nil || d.ModuleByName("nope") != nil {
		t.Fatal("ModuleByName")
	}
	if d.Module(ModuleKind("XX")) != nil {
		t.Fatal("unknown kind must return nil")
	}
}

func TestNodeSpecDerived(t *testing.T) {
	n := NodeSpec{CPU: CPUSpec{Cores: 10, ClockGHz: 2, FlopsPerCyc: 16, PowerW: 100}, Sockets: 2}
	if n.Cores() != 20 {
		t.Fatal("Cores")
	}
	if n.CPUPeakGFlops() != 20*2*16 {
		t.Fatalf("CPUPeakGFlops: %f", n.CPUPeakGFlops())
	}
	n.Service = true
	if n.Cores() != 0 {
		t.Fatal("service nodes contribute no compute cores")
	}
	g := NodeSpec{Accels: []AccelAttach{{Spec: V100, Count: 4}}}
	if g.GPUs() != 4 || g.FPGAs() != 0 {
		t.Fatal("accelerator counting")
	}
	if g.GPUPeakTFlops() != 4*V100.FP32TFlops {
		t.Fatal("GPUPeakTFlops")
	}
}

func TestPowerAggregation(t *testing.T) {
	dam := DEEP().Module(DataAnalytics)
	perNode := dam.Groups[0].Node.PowerW()
	// 2 sockets × 125 W + V100 300 W + FPGA 225 W + 150 W overhead.
	want := 2*125 + 300 + 225 + 150.0
	if perNode != want {
		t.Fatalf("node power: want %.0f got %.0f", want, perNode)
	}
	if dam.PeakPowerW() != 16*want {
		t.Fatal("module power aggregate")
	}
}

func TestValidateCatchesBrokenSystems(t *testing.T) {
	cases := []struct {
		name string
		sys  func() *System
	}{
		{"no name", func() *System { s := DEEP(); s.Name = ""; return s }},
		{"no modules", func() *System { s := DEEP(); s.Modules = nil; return s }},
		{"bad federation", func() *System { s := DEEP(); s.Federation.BWGBs = 0; return s }},
		{"duplicate names", func() *System {
			s := DEEP()
			s.Modules[1].Name = s.Modules[0].Name
			return s
		}},
		{"sssm without storage", func() *System {
			s := DEEP()
			s.Module(StorageService).Storage = nil
			return s
		}},
		{"qm without spec", func() *System {
			s := DEEP()
			s.Module(QuantumModule).Quantum.Qubits = 0
			return s
		}},
		{"nam without spec", func() *System {
			s := DEEP()
			s.Module(NetworkMemory).NAM = nil
			return s
		}},
		{"gce outside esb", func() *System {
			s := DEEP()
			s.Module(ClusterModule).HasGCE = true
			return s
		}},
		{"module with no nodes", func() *System {
			s := DEEP()
			s.Module(ClusterModule).Groups = nil
			return s
		}},
		{"bad interconnect", func() *System {
			s := DEEP()
			s.Module(ClusterModule).Interconnect.LatencyUS = 0
			return s
		}},
	}
	for _, tc := range cases {
		if err := tc.sys().Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken system", tc.name)
		}
	}
}

func TestSummaryMentionsEveryModule(t *testing.T) {
	for _, sys := range []*System{DEEP(), JUWELS()} {
		s := sys.Summary()
		for _, m := range sys.Modules {
			if !strings.Contains(s, m.Name) {
				t.Fatalf("summary of %s missing module %s:\n%s", sys.Name, m.Name, s)
			}
		}
	}
}

func TestTotalNodes(t *testing.T) {
	j := JUWELS()
	if j.TotalNodes() != 2583+940 {
		t.Fatalf("TotalNodes: %d", j.TotalNodes())
	}
}

func TestLUMIValidates(t *testing.T) {
	l := LUMI()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	g := l.Module(BoosterModule)
	if g.GPUs() != 2978*4 {
		t.Fatalf("LUMI-G GPUs: %d", g.GPUs())
	}
	// The related-work point: LUMI uses AMD Instinct, not NVIDIA.
	if g.Groups[0].Node.Accels[0].Spec.Name != "AMD MI250X" {
		t.Fatal("LUMI-G must carry MI250X")
	}
	if l.Module(ClusterModule).Cores() != 2048*128 {
		t.Fatalf("LUMI-C cores: %d", l.Module(ClusterModule).Cores())
	}
}
