// Package msa models the Modular Supercomputing Architecture described in
// Section II of the paper: a heterogeneous HPC system composed of modules
// (Cluster Module, Extreme Scale Booster, Data Analytics Module, Scalable
// Storage Service Module, Network Attached Memory, Quantum Module), each a
// parallel cluster in its own right, joined by a high-performance network
// federation.
//
// The package is purely descriptive: machine-readable hardware
// specifications with aggregate queries and validation. The companion
// packages consume it — perfmodel derives time-to-solution and energy,
// sched places jobs onto module combinations, and the experiment harness
// renders Table I and the JUWELS configuration (E1, E2) from the reference
// configs in configs.go.
package msa

import (
	"fmt"
	"strings"
)

// ModuleKind identifies the architectural role of a module (Fig. 1).
type ModuleKind string

// The module kinds of Fig. 1.
const (
	ClusterModule  ModuleKind = "CM"   // multi-core CPUs, fast single-thread
	BoosterModule  ModuleKind = "ESB"  // many-core, extreme scale, GCE fabric
	DataAnalytics  ModuleKind = "DAM"  // GPUs/FPGAs + large memory + NVM
	StorageService ModuleKind = "SSSM" // parallel filesystem (Lustre/GPFS)
	NetworkMemory  ModuleKind = "NAM"  // network-attached memory prototype
	QuantumModule  ModuleKind = "QM"   // quantum annealer (D-Wave)
)

// AcceleratorClass distinguishes accelerator silicon.
type AcceleratorClass string

// Accelerator classes present in the DEEP and JUWELS systems.
const (
	AccelGPU  AcceleratorClass = "GPU"
	AccelFPGA AcceleratorClass = "FPGA"
)

// AcceleratorSpec describes one accelerator model.
type AcceleratorSpec struct {
	Name        string
	Class       AcceleratorClass
	FP64TFlops  float64 // peak double precision
	FP32TFlops  float64 // peak single precision
	TensorTFlop float64 // mixed-precision tensor cores (0 if none)
	MemGB       float64
	MemBWGBs    float64
	PowerW      float64
}

// CPUSpec describes one CPU model (per socket).
type CPUSpec struct {
	Name        string
	Cores       int
	ClockGHz    float64
	FlopsPerCyc float64 // per core, including SIMD width × FMA
	PowerW      float64 // TDP per socket
}

// AccelAttach is an accelerator model attached to a node, with a count.
type AccelAttach struct {
	Spec  AcceleratorSpec
	Count int
}

// NodeSpec is the hardware of one node.
type NodeSpec struct {
	CPU      CPUSpec
	Sockets  int
	MemGB    float64
	MemBWGBs float64
	Accels   []AccelAttach
	NVMeTB   float64 // local NVMe SSD capacity (storage)
	NVMTB    float64 // byte-addressable non-volatile memory (e.g. Optane)
	// Service marks login/visualization nodes whose cores are not counted
	// in the compute aggregates the paper reports.
	Service bool
}

// Cores returns compute cores on the node (0 for service nodes).
func (n NodeSpec) Cores() int {
	if n.Service {
		return 0
	}
	return n.CPU.Cores * n.Sockets
}

// GPUs returns the number of GPU accelerators on the node.
func (n NodeSpec) GPUs() int { return n.countAccel(AccelGPU) }

// FPGAs returns the number of FPGA accelerators on the node.
func (n NodeSpec) FPGAs() int { return n.countAccel(AccelFPGA) }

func (n NodeSpec) countAccel(class AcceleratorClass) int {
	total := 0
	for _, a := range n.Accels {
		if a.Spec.Class == class {
			total += a.Count
		}
	}
	return total
}

// CPUPeakGFlops returns the node's peak CPU performance in GFlop/s.
func (n NodeSpec) CPUPeakGFlops() float64 {
	return float64(n.Cores()) * n.CPU.ClockGHz * n.CPU.FlopsPerCyc
}

// GPUPeakTFlops returns the node's aggregate peak GPU fp32 performance.
func (n NodeSpec) GPUPeakTFlops() float64 {
	s := 0.0
	for _, a := range n.Accels {
		if a.Spec.Class == AccelGPU {
			s += float64(a.Count) * a.Spec.FP32TFlops
		}
	}
	return s
}

// PowerW returns a node's nominal power draw (sockets + accelerators +
// a fixed 150 W board/memory/NIC overhead).
func (n NodeSpec) PowerW() float64 {
	p := float64(n.Sockets)*n.CPU.PowerW + 150
	for _, a := range n.Accels {
		p += float64(a.Count) * a.Spec.PowerW
	}
	return p
}

// Link models an interconnect: per-message latency and per-direction
// bandwidth.
type Link struct {
	Name      string
	LatencyUS float64 // one-way latency, microseconds
	BWGBs     float64 // bandwidth per direction, GB/s
}

// NodeGroup is a homogeneous set of nodes inside a module.
type NodeGroup struct {
	Name  string
	Count int
	Node  NodeSpec
}

// StorageSpec describes an SSSM module's parallel filesystem.
type StorageSpec struct {
	Filesystem  string // "Lustre", "GPFS"
	OSTs        int    // object storage targets (stripe targets)
	OSTBWGBs    float64
	CapacityPB  float64
	MetadataOps float64 // metadata ops/s capacity
}

// QuantumSpec describes a QM module's annealer.
type QuantumSpec struct {
	Device   string
	Qubits   int
	Couplers int
}

// NAMSpec describes the Network Attached Memory prototype.
type NAMSpec struct {
	CapacityGB float64
	BWGBs      float64
	LatencyUS  float64
}

// Module is one MSA module: a parallel cluster with its own interconnect.
type Module struct {
	Kind         ModuleKind
	Name         string
	Groups       []NodeGroup
	Interconnect Link
	HasGCE       bool // FPGA Global Collective Engine in fabric (ESB)
	Storage      *StorageSpec
	Quantum      *QuantumSpec
	NAM          *NAMSpec
}

// Nodes returns the total node count of the module.
func (m *Module) Nodes() int {
	n := 0
	for _, g := range m.Groups {
		n += g.Count
	}
	return n
}

// Cores returns total compute cores in the module.
func (m *Module) Cores() int {
	n := 0
	for _, g := range m.Groups {
		n += g.Count * g.Node.Cores()
	}
	return n
}

// GPUs returns total GPUs in the module.
func (m *Module) GPUs() int {
	n := 0
	for _, g := range m.Groups {
		n += g.Count * g.Node.GPUs()
	}
	return n
}

// FPGAs returns total FPGAs in the module.
func (m *Module) FPGAs() int {
	n := 0
	for _, g := range m.Groups {
		n += g.Count * g.Node.FPGAs()
	}
	return n
}

// TotalMemGB returns aggregate CPU DRAM across the module.
func (m *Module) TotalMemGB() float64 {
	s := 0.0
	for _, g := range m.Groups {
		s += float64(g.Count) * g.Node.MemGB
	}
	return s
}

// TotalNVMeTB returns aggregate local NVMe capacity across the module.
func (m *Module) TotalNVMeTB() float64 {
	s := 0.0
	for _, g := range m.Groups {
		s += float64(g.Count) * g.Node.NVMeTB
	}
	return s
}

// TotalNVMTB returns aggregate byte-addressable NVM across the module
// (the DEEP DAM's "aggregated 32 TB of NVM", §II-B).
func (m *Module) TotalNVMTB() float64 {
	s := 0.0
	for _, g := range m.Groups {
		s += float64(g.Count) * g.Node.NVMTB
	}
	return s
}

// PeakPowerW returns the module's aggregate nominal power draw.
func (m *Module) PeakPowerW() float64 {
	s := 0.0
	for _, g := range m.Groups {
		s += float64(g.Count) * g.Node.PowerW()
	}
	return s
}

// System is a complete MSA machine: modules joined by a federation link.
type System struct {
	Name       string
	Modules    []*Module
	Federation Link
}

// Module returns the first module of the given kind, or nil.
func (s *System) Module(kind ModuleKind) *Module {
	for _, m := range s.Modules {
		if m.Kind == kind {
			return m
		}
	}
	return nil
}

// CheckpointTargets returns the storage endpoints a job on this system
// can flush coordinated checkpoints to: the SSSM module's parallel
// filesystem and, when the machine has one, the NAM module's
// network-attached memory. Either may be nil when the module is absent —
// module-aware checkpoint placement (internal/ft) degrades to whichever
// target exists.
func (s *System) CheckpointTargets() (*StorageSpec, *NAMSpec) {
	var fs *StorageSpec
	var nam *NAMSpec
	if m := s.Module(StorageService); m != nil {
		fs = m.Storage
	}
	if m := s.Module(NetworkMemory); m != nil {
		nam = m.NAM
	}
	return fs, nam
}

// ModuleByName returns the named module, or nil.
func (s *System) ModuleByName(name string) *Module {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// TotalNodes sums nodes across modules.
func (s *System) TotalNodes() int {
	n := 0
	for _, m := range s.Modules {
		n += m.Nodes()
	}
	return n
}

// Validate checks structural consistency of the system description.
func (s *System) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("msa: system has no name")
	}
	if len(s.Modules) == 0 {
		return fmt.Errorf("msa: system %s has no modules", s.Name)
	}
	if s.Federation.BWGBs <= 0 || s.Federation.LatencyUS <= 0 {
		return fmt.Errorf("msa: system %s has invalid federation link %+v", s.Name, s.Federation)
	}
	seen := map[string]bool{}
	for _, m := range s.Modules {
		if m.Name == "" {
			return fmt.Errorf("msa: module of kind %s has no name", m.Kind)
		}
		if seen[m.Name] {
			return fmt.Errorf("msa: duplicate module name %q", m.Name)
		}
		seen[m.Name] = true
		switch m.Kind {
		case StorageService:
			if m.Storage == nil {
				return fmt.Errorf("msa: SSSM module %s lacks storage spec", m.Name)
			}
			if m.Storage.OSTs <= 0 || m.Storage.OSTBWGBs <= 0 {
				return fmt.Errorf("msa: SSSM module %s has invalid storage spec %+v", m.Name, *m.Storage)
			}
		case QuantumModule:
			if m.Quantum == nil || m.Quantum.Qubits <= 0 {
				return fmt.Errorf("msa: QM module %s lacks a valid quantum spec", m.Name)
			}
		case NetworkMemory:
			if m.NAM == nil || m.NAM.CapacityGB <= 0 {
				return fmt.Errorf("msa: NAM module %s lacks a valid NAM spec", m.Name)
			}
		default:
			if m.Nodes() <= 0 {
				return fmt.Errorf("msa: module %s has no nodes", m.Name)
			}
			if m.Interconnect.BWGBs <= 0 || m.Interconnect.LatencyUS <= 0 {
				return fmt.Errorf("msa: module %s has invalid interconnect %+v", m.Name, m.Interconnect)
			}
			if m.HasGCE && m.Kind != BoosterModule {
				return fmt.Errorf("msa: module %s has a GCE but is not an ESB", m.Name)
			}
		}
		for _, g := range m.Groups {
			if g.Count < 0 {
				return fmt.Errorf("msa: module %s group %s has negative count", m.Name, g.Name)
			}
			if !g.Node.Service && g.Count > 0 && m.Kind != StorageService && m.Kind != NetworkMemory && m.Kind != QuantumModule {
				if g.Node.Sockets <= 0 || g.Node.CPU.Cores <= 0 {
					return fmt.Errorf("msa: module %s group %s has invalid node spec", m.Name, g.Name)
				}
			}
		}
	}
	return nil
}

// Summary renders a one-line-per-module overview of the system.
func (s *System) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "System %s (federation: %s, %.1f µs, %.0f GB/s)\n",
		s.Name, s.Federation.Name, s.Federation.LatencyUS, s.Federation.BWGBs)
	for _, m := range s.Modules {
		fmt.Fprintf(&b, "  [%-4s] %-22s nodes=%-5d cores=%-7d gpus=%-5d fpgas=%-3d mem=%.0f GB",
			m.Kind, m.Name, m.Nodes(), m.Cores(), m.GPUs(), m.FPGAs(), m.TotalMemGB())
		if m.HasGCE {
			b.WriteString(" +GCE")
		}
		if m.Storage != nil {
			fmt.Fprintf(&b, " %s %.1f PB (%d OSTs)", m.Storage.Filesystem, m.Storage.CapacityPB, m.Storage.OSTs)
		}
		if m.Quantum != nil {
			fmt.Fprintf(&b, " %s: %d qubits / %d couplers", m.Quantum.Device, m.Quantum.Qubits, m.Quantum.Couplers)
		}
		if m.NAM != nil {
			fmt.Fprintf(&b, " NAM %.0f GB @ %.0f GB/s", m.NAM.CapacityGB, m.NAM.BWGBs)
		}
		b.WriteString("\n")
	}
	return b.String()
}
