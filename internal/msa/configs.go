package msa

import (
	"fmt"
	"strings"
)

// Accelerator catalog used by the reference systems.
var (
	// V100 is the NVIDIA Tesla V100 (SXM2 32 GB variant is used in DEEP's
	// DAM with 32 GB HBM2, Table I).
	V100 = AcceleratorSpec{
		Name: "NVIDIA V100", Class: AccelGPU,
		FP64TFlops: 7.8, FP32TFlops: 15.7, TensorTFlop: 125,
		MemGB: 32, MemBWGBs: 900, PowerW: 300,
	}
	// A100 is the NVIDIA A100-SXM4-40GB in the JUWELS booster (§III-A,
	// §IV-A: "latest cuDNN support ... tensor cores").
	A100 = AcceleratorSpec{
		Name: "NVIDIA A100", Class: AccelGPU,
		FP64TFlops: 9.7, FP32TFlops: 19.5, TensorTFlop: 312,
		MemGB: 40, MemBWGBs: 1555, PowerW: 400,
	}
	// Stratix10 is the Intel STRATIX10 FPGA PCIe3 card of the DEEP DAM
	// (Table I: 32 GB DDR4 FPGA memory per node).
	Stratix10 = AcceleratorSpec{
		Name: "Intel STRATIX10", Class: AccelFPGA,
		FP64TFlops: 1.3, FP32TFlops: 2.6,
		MemGB: 32, MemBWGBs: 77, PowerW: 225,
	}
	// MI250X is the AMD Instinct GPU of LUMI-G (the paper's related-work
	// note: "Nvidia GPUs in JUWELS vs AMD Instinct in LUMI").
	MI250X = AcceleratorSpec{
		Name: "AMD MI250X", Class: AccelGPU,
		FP64TFlops: 47.9, FP32TFlops: 47.9, TensorTFlop: 383,
		MemGB: 128, MemBWGBs: 3277, PowerW: 560,
	}
)

// CPU catalog.
var (
	// CascadeLake is the Intel Xeon Cascade Lake of the DEEP DAM (Table I
	// lists 2× per node). Modeled on Xeon Gold 6230: 20 cores @ 2.1 GHz,
	// AVX-512 (2×FMA ⇒ 32 flops/cycle fp64).
	CascadeLake = CPUSpec{Name: "Intel Xeon Cascade Lake 6230", Cores: 20, ClockGHz: 2.1, FlopsPerCyc: 32, PowerW: 125}
	// Skylake8168 is the Xeon Platinum 8168 of JUWELS cluster compute
	// nodes: 24 cores @ 2.7 GHz.
	Skylake8168 = CPUSpec{Name: "Intel Xeon Platinum 8168", Cores: 24, ClockGHz: 2.7, FlopsPerCyc: 32, PowerW: 205}
	// Skylake6148 is the Xeon Gold 6148 of JUWELS cluster GPU nodes:
	// 20 cores @ 2.4 GHz.
	Skylake6148 = CPUSpec{Name: "Intel Xeon Gold 6148", Cores: 20, ClockGHz: 2.4, FlopsPerCyc: 32, PowerW: 150}
	// EPYC7402 is the AMD EPYC 7402 Rome of JUWELS booster nodes:
	// 24 cores @ 2.8 GHz, AVX2 (16 flops/cycle fp64).
	EPYC7402 = CPUSpec{Name: "AMD EPYC 7402", Cores: 24, ClockGHz: 2.8, FlopsPerCyc: 16, PowerW: 180}
	// XeonPhiLike stands in for the ESB many-core nodes of the DEEP
	// system: many moderate cores (§II-A: "each of the many CPU cores ...
	// offers only moderate performance").
	XeonPhiLike = CPUSpec{Name: "Many-core ESB CPU", Cores: 64, ClockGHz: 1.4, FlopsPerCyc: 32, PowerW: 215}
)

// Interconnect catalog.
var (
	// Extoll is the EXTOLL network federation used in the DEEP systems
	// (§II-A footnote 12).
	Extoll = Link{Name: "EXTOLL", LatencyUS: 1.2, BWGBs: 12.5}
	// InfinibandEDR is the JUWELS cluster fabric.
	InfinibandEDR = Link{Name: "InfiniBand EDR", LatencyUS: 1.0, BWGBs: 12.5}
	// InfinibandHDR is the JUWELS booster fabric (4×HDR200 per node; we
	// model the per-direction node injection bandwidth).
	InfinibandHDR = Link{Name: "InfiniBand HDR200", LatencyUS: 0.9, BWGBs: 25}
)

// DEEP returns the DEEP(-EST) prototype system at JSC: the MSA reference
// implementation with CM, ESB (with GCE), DAM (Table I), SSSM, NAM, and
// the JUNIQ quantum module with the two D-Wave device generations the
// paper reports (2000Q: 2000 qubits; Advantage: 5000 qubits / 35000
// couplers, §III-C).
func DEEP() *System {
	return &System{
		Name:       "DEEP",
		Federation: Extoll,
		Modules: []*Module{
			{
				Kind: ClusterModule, Name: "deep-cm",
				Interconnect: InfinibandEDR,
				Groups: []NodeGroup{{
					Name: "cn", Count: 50,
					Node: NodeSpec{CPU: Skylake6148, Sockets: 2, MemGB: 192, MemBWGBs: 256},
				}},
			},
			{
				Kind: BoosterModule, Name: "deep-esb",
				Interconnect: Extoll,
				HasGCE:       true,
				Groups: []NodeGroup{{
					Name: "esb", Count: 75,
					Node: NodeSpec{CPU: XeonPhiLike, Sockets: 1, MemGB: 48, MemBWGBs: 400,
						Accels: []AccelAttach{{Spec: V100, Count: 1}}},
				}},
			},
			{
				// Table I: 16 nodes, 2× Cascade Lake, 1 V100, 1 STRATIX10,
				// 384 GB DDR4 + 32 GB FPGA DDR4 + 32 GB GPU HBM2 per node,
				// 2× 1.5 TB NVMe SSD (⇒ 2 TB usable NVM per node, 32 TB
				// aggregate as §II-B reports).
				Kind: DataAnalytics, Name: "deep-dam",
				Interconnect: Extoll,
				Groups: []NodeGroup{{
					Name: "dam", Count: 16,
					Node: NodeSpec{
						CPU: CascadeLake, Sockets: 2,
						MemGB: 384, MemBWGBs: 282,
						Accels: []AccelAttach{
							{Spec: V100, Count: 1},
							{Spec: Stratix10, Count: 1},
						},
						NVMeTB: 3.0, // 2× 1.5 TB NVMe SSD
						NVMTB:  2.0, // byte-addressable NVM; 32 TB aggregate
					},
				}},
			},
			{
				Kind: StorageService, Name: "deep-sssm",
				Storage: &StorageSpec{Filesystem: "BeeGFS", OSTs: 8, OSTBWGBs: 2.5, CapacityPB: 0.5, MetadataOps: 50000},
			},
			{
				Kind: NetworkMemory, Name: "deep-nam",
				NAM: &NAMSpec{CapacityGB: 2048, BWGBs: 40, LatencyUS: 3},
			},
			{
				Kind: QuantumModule, Name: "juniq-advantage",
				Quantum: &QuantumSpec{Device: "D-Wave Advantage", Qubits: 5000, Couplers: 35000},
			},
		},
	}
}

// JUWELS returns the JUWELS modular supercomputer as described in §II-B:
// cluster module with 2583 nodes / 122768 compute cores / 224 GPUs, and
// booster module with 940 nodes / 45024 compute cores / 3744 GPUs. The
// node-group decomposition follows the production machine: 2511 Xeon 8168
// compute nodes plus 56 quad-V100 Xeon 6148 nodes plus 16 service nodes in
// the cluster; 936 quad-A100 EPYC nodes plus 2 CPU-only and 2 service
// nodes in the booster.
func JUWELS() *System {
	return &System{
		Name:       "JUWELS",
		Federation: InfinibandHDR,
		Modules: []*Module{
			{
				Kind: ClusterModule, Name: "juwels-cluster",
				Interconnect: InfinibandEDR,
				Groups: []NodeGroup{
					{Name: "compute", Count: 2511,
						Node: NodeSpec{CPU: Skylake8168, Sockets: 2, MemGB: 96, MemBWGBs: 256}},
					{Name: "gpu", Count: 56,
						Node: NodeSpec{CPU: Skylake6148, Sockets: 2, MemGB: 192, MemBWGBs: 256,
							Accels: []AccelAttach{{Spec: V100, Count: 4}}}},
					{Name: "service", Count: 16,
						Node: NodeSpec{CPU: Skylake6148, Sockets: 2, MemGB: 768, MemBWGBs: 256, Service: true}},
				},
			},
			{
				Kind: BoosterModule, Name: "juwels-booster",
				Interconnect: InfinibandHDR,
				HasGCE:       false, // the production booster relies on NCCL/IB, not the DEEP GCE
				Groups: []NodeGroup{
					{Name: "gpu", Count: 936,
						Node: NodeSpec{CPU: EPYC7402, Sockets: 2, MemGB: 512, MemBWGBs: 410,
							Accels: []AccelAttach{{Spec: A100, Count: 4}}}},
					{Name: "cpu", Count: 2,
						Node: NodeSpec{CPU: EPYC7402, Sockets: 2, MemGB: 512, MemBWGBs: 410}},
					{Name: "service", Count: 2,
						Node: NodeSpec{CPU: EPYC7402, Sockets: 2, MemGB: 512, MemBWGBs: 410, Service: true}},
				},
			},
			{
				Kind: StorageService, Name: "juwels-sssm",
				Storage: &StorageSpec{Filesystem: "GPFS", OSTs: 64, OSTBWGBs: 6.25, CapacityPB: 75, MetadataOps: 500000},
			},
		},
	}
}

// LUMI returns the EuroHPC LUMI system at CSC in Finland, which the paper
// names as another MSA implementation ("An MSA implementation is ideal
// for a supercomputer centre infrastructure such as JSC ... or CSC in
// Finland (e.g., EuroHPC LUMI)", §II): LUMI-C as the cluster module
// (EPYC Milan), LUMI-G as the booster (quad MI250X), and the LUMI-P/F
// Lustre storage.
func LUMI() *System {
	milan := CPUSpec{Name: "AMD EPYC 7763", Cores: 64, ClockGHz: 2.45, FlopsPerCyc: 16, PowerW: 280}
	trento := CPUSpec{Name: "AMD EPYC 7A53", Cores: 64, ClockGHz: 2.0, FlopsPerCyc: 16, PowerW: 225}
	slingshot := Link{Name: "HPE Slingshot-11", LatencyUS: 1.1, BWGBs: 25}
	return &System{
		Name:       "LUMI",
		Federation: slingshot,
		Modules: []*Module{
			{
				Kind: ClusterModule, Name: "lumi-c",
				Interconnect: slingshot,
				Groups: []NodeGroup{{
					Name: "compute", Count: 2048,
					Node: NodeSpec{CPU: milan, Sockets: 2, MemGB: 256, MemBWGBs: 400},
				}},
			},
			{
				Kind: BoosterModule, Name: "lumi-g",
				Interconnect: slingshot,
				Groups: []NodeGroup{{
					Name: "gpu", Count: 2978,
					Node: NodeSpec{CPU: trento, Sockets: 1, MemGB: 512, MemBWGBs: 400,
						Accels: []AccelAttach{{Spec: MI250X, Count: 4}}},
				}},
			},
			{
				Kind: StorageService, Name: "lumi-p",
				Storage: &StorageSpec{Filesystem: "Lustre", OSTs: 128, OSTBWGBs: 7.5, CapacityPB: 80, MetadataOps: 400000},
			},
		},
	}
}

// RenderTableI renders the DEEP DAM specification in the layout of the
// paper's Table I (experiment E1). It accepts the DAM module so tests can
// verify the rendered content against the machine-readable config.
func RenderTableI(dam *Module) string {
	if dam == nil || dam.Kind != DataAnalytics {
		panic("msa: RenderTableI requires a DAM module")
	}
	g := dam.Groups[0]
	n := g.Node
	var gpu, fpga AccelAttach
	for _, a := range n.Accels {
		switch a.Spec.Class {
		case AccelGPU:
			gpu = a
		case AccelFPGA:
			fpga = a
		}
	}
	var b strings.Builder
	b.WriteString("TABLE I — TECHNICAL SPECIFICATIONS OF THE DEEP DAM\n")
	rule := strings.Repeat("-", 72) + "\n"
	b.WriteString(rule)
	fmt.Fprintf(&b, "%-22s | %d nodes with %dx %s\n", "CPU", g.Count, n.Sockets, n.CPU.Name)
	fmt.Fprintf(&b, "%-22s | %d %s GPU\n", "Hardware Acceleration", g.Count*gpu.Count, gpu.Spec.Name)
	fmt.Fprintf(&b, "%-22s | %d %s FPGA PCIe3\n", "", g.Count*fpga.Count, fpga.Spec.Name)
	fmt.Fprintf(&b, "%-22s | %.0f GB DDR4 CPU memory /node\n", "Memory", n.MemGB)
	fmt.Fprintf(&b, "%-22s | %.0f GB DDR4 FPGA memory /node\n", "", fpga.Spec.MemGB)
	fmt.Fprintf(&b, "%-22s | %.0f GB HBM2 GPU memory /node\n", "", gpu.Spec.MemGB)
	fmt.Fprintf(&b, "%-22s | 2x %.1f TB NVMe SSD\n", "Storage", n.NVMeTB/2)
	b.WriteString(rule)
	fmt.Fprintf(&b, "aggregate NVM: %.0f TB (paper §II-B: 32 TB)\n", dam.TotalNVMTB())
	return b.String()
}
