package msa_test

import (
	"fmt"

	"repro/internal/msa"
)

// ExampleJUWELS verifies the paper's §II-B configuration numbers.
func ExampleJUWELS() {
	j := msa.JUWELS()
	cm := j.Module(msa.ClusterModule)
	esb := j.Module(msa.BoosterModule)
	fmt.Printf("cluster: %d nodes, %d cores, %d GPUs\n", cm.Nodes(), cm.Cores(), cm.GPUs())
	fmt.Printf("booster: %d nodes, %d cores, %d GPUs\n", esb.Nodes(), esb.Cores(), esb.GPUs())
	// Output:
	// cluster: 2583 nodes, 122768 cores, 224 GPUs
	// booster: 940 nodes, 45024 cores, 3744 GPUs
}

// ExampleDEEP inspects the DAM module of Table I.
func ExampleDEEP() {
	dam := msa.DEEP().Module(msa.DataAnalytics)
	fmt.Printf("%d nodes, %d V100, %d FPGAs, %.0f TB NVM\n",
		dam.Nodes(), dam.GPUs(), dam.FPGAs(), dam.TotalNVMTB())
	// Output: 16 nodes, 16 V100, 16 FPGAs, 32 TB NVM
}
