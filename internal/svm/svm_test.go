package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mpi"
)

// linearSeparable generates two Gaussian clouds with ±1 labels.
func linearSeparable(rng *rand.Rand, n int, gap float64) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := 1
		if i%2 == 0 {
			c = -1
		}
		x[i] = []float64{float64(c)*gap + rng.NormFloat64()*0.5, float64(c)*gap + rng.NormFloat64()*0.5}
		y[i] = c
	}
	return x, y
}

// xorData is the canonical non-linearly-separable set.
func xorData(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a := float64(rng.Intn(2))
		b := float64(rng.Intn(2))
		x[i] = []float64{a + rng.NormFloat64()*0.1, b + rng.NormFloat64()*0.1}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return x, y
}

func TestLinearSVMSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := linearSeparable(rng, 60, 2)
	m := Train(x, y, Config{Kernel: Linear{}, C: 10, Seed: 2})
	if acc := m.Accuracy(x, y); acc < 0.98 {
		t.Fatalf("linear SVM accuracy %f", acc)
	}
	// Margins of support vectors should be near ±1 for separable data.
	if m.NumSVs() == 0 || m.NumSVs() == len(x) {
		t.Fatalf("suspicious SV count %d of %d", m.NumSVs(), len(x))
	}
}

func TestRBFSVMSolvesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorData(rng, 80)
	linear := Train(x, y, Config{Kernel: Linear{}, Seed: 3})
	rbf := Train(x, y, Config{Kernel: RBF{Gamma: 2}, C: 10, Seed: 3})
	accL := linear.Accuracy(x, y)
	accR := rbf.Accuracy(x, y)
	if accR < 0.95 {
		t.Fatalf("RBF should solve XOR: %f", accR)
	}
	if accL > accR {
		t.Fatalf("linear (%f) should not beat RBF (%f) on XOR", accL, accR)
	}
}

func TestSVMGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xTr, yTr := linearSeparable(rng, 100, 1.5)
	xTe, yTe := linearSeparable(rng, 100, 1.5)
	m := Train(xTr, yTr, Config{Kernel: RBF{Gamma: 0.5}, Seed: 4})
	if acc := m.Accuracy(xTe, yTe); acc < 0.95 {
		t.Fatalf("test accuracy %f", acc)
	}
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	for _, tc := range []struct {
		x [][]float64
		y []int
	}{
		{nil, nil},
		{[][]float64{{1}}, []int{0}},    // label not ±1
		{[][]float64{{1}}, []int{1, 1}}, // length mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v/%v", tc.x, tc.y)
				}
			}()
			Train(tc.x, tc.y, Config{})
		}()
	}
}

func TestDecisionSignMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := linearSeparable(rng, 40, 2)
	m := Train(x, y, Config{Seed: 6})
	for i := range x {
		d := m.Decision(x[i])
		p := m.Predict(x[i])
		if (d >= 0 && p != 1) || (d < 0 && p != -1) {
			t.Fatalf("sign mismatch: %f vs %d", d, p)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []int{1, -1, 1}
	buf := serializeSVSet(x, y)
	x2, y2 := deserializeSVSet(buf)
	if len(x2) != 3 || len(y2) != 3 {
		t.Fatal("sizes")
	}
	for i := range x {
		if y2[i] != y[i] {
			t.Fatal("labels")
		}
		for j := range x[i] {
			if x2[i][j] != x[i][j] {
				t.Fatal("rows")
			}
		}
	}
	// Empty set round trip.
	ex, ey := deserializeSVSet(serializeSVSet(nil, nil))
	if len(ex) != 0 || len(ey) != 0 {
		t.Fatal("empty set")
	}
}

func TestShardData(t *testing.T) {
	x := make([][]float64, 10)
	y := make([]int, 10)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = 1
	}
	xs, ys := ShardData(x, y, 3)
	total := 0
	for r := range xs {
		if len(xs[r]) != len(ys[r]) {
			t.Fatal("shard size mismatch")
		}
		total += len(xs[r])
	}
	if total != 10 {
		t.Fatalf("shards cover %d of 10", total)
	}
}

// TestCascadeMatchesSingle is experiment E11's core property: the cascade
// parallel SVM must match single-node training quality while each worker
// only ever sees a fraction of the data.
func TestCascadeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := linearSeparable(rng, 120, 1.5)
	xTe, yTe := linearSeparable(rng, 100, 1.5)
	cfg := Config{Kernel: RBF{Gamma: 0.5}, C: 1, Seed: 8}

	single := Train(x, y, cfg)
	accSingle := single.Accuracy(xTe, yTe)

	for _, p := range []int{2, 4} {
		xs, ys := ShardData(x, y, p)
		w := mpi.NewWorld(p)
		accs := make([]float64, p)
		err := w.Run(func(c *mpi.Comm) error {
			m := TrainCascade(c, xs[c.Rank()], ys[c.Rank()], cfg)
			accs[c.Rank()] = m.Accuracy(xTe, yTe)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for r, acc := range accs {
			if acc < accSingle-0.05 {
				t.Fatalf("p=%d rank %d: cascade accuracy %f far below single %f", p, r, acc, accSingle)
			}
		}
		// All ranks must return identical models.
		for r := 1; r < p; r++ {
			if math.Abs(accs[r]-accs[0]) > 1e-12 {
				t.Fatalf("ranks disagree: %v", accs)
			}
		}
	}
}

func TestCascadeOddWorldSize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := linearSeparable(rng, 90, 2)
	cfg := Config{Kernel: Linear{}, Seed: 10}
	xs, ys := ShardData(x, y, 3)
	w := mpi.NewWorld(3)
	err := w.Run(func(c *mpi.Comm) error {
		m := TrainCascade(c, xs[c.Rank()], ys[c.Rank()], cfg)
		if acc := m.Accuracy(x, y); acc < 0.95 {
			t.Errorf("rank %d accuracy %f", c.Rank(), acc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOneVsRest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Three clusters at angles.
	n := 90
	x := make([][]float64, n)
	labels := make([]int, n)
	for i := range x {
		c := i % 3
		angle := float64(c) * 2 * math.Pi / 3
		x[i] = []float64{
			3*math.Cos(angle) + rng.NormFloat64()*0.5,
			3*math.Sin(angle) + rng.NormFloat64()*0.5,
		}
		labels[i] = c
	}
	ovr := TrainOneVsRest(x, labels, 3, Config{Kernel: RBF{Gamma: 0.5}, Seed: 12})
	if acc := ovr.Accuracy(x, labels); acc < 0.95 {
		t.Fatalf("OvR accuracy %f", acc)
	}
}

func TestOneVsRestPanicsOnOneClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainOneVsRest([][]float64{{1}}, []int{0}, 1, Config{})
}

func TestEnsembleMajorityVote(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y := linearSeparable(rng, 100, 1.2)
	ens := &Ensemble{}
	for m := 0; m < 5; m++ {
		idx := rng.Perm(len(x))[:30]
		sx := make([][]float64, 30)
		sy := make([]int, 30)
		for i, r := range idx {
			sx[i] = x[r]
			sy[i] = y[r]
		}
		ens.Members = append(ens.Members, Train(sx, sy, Config{Seed: int64(m)}))
	}
	if acc := ens.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("ensemble accuracy %f", acc)
	}
	// VoteDecision is bounded.
	if v := ens.VoteDecision(x[0]); v < -1 || v > 1 {
		t.Fatalf("vote %f out of [-1,1]", v)
	}
}

func TestKernels(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if (Linear{}).Eval(a, b) != 0 || (Linear{}).Eval(a, a) != 1 {
		t.Fatal("linear kernel")
	}
	r := RBF{Gamma: 1}
	if r.Eval(a, a) != 1 {
		t.Fatal("RBF self-similarity must be 1")
	}
	if v := r.Eval(a, b); math.Abs(v-math.Exp(-2)) > 1e-12 {
		t.Fatalf("RBF cross: %f", v)
	}
	if (Linear{}).Name() != "linear" || r.Name() != "rbf" {
		t.Fatal("kernel names")
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	m := &Model{Kernel: Linear{}}
	if m.Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}
