package svm

import (
	"fmt"

	"repro/internal/mpi"
)

// Cascade SVM (Graf et al., the parallelization scheme behind the paper's
// MPI SVM [16]): the training set is split across P workers, each trains a
// local SVM, and support vectors are merged pairwise up a binary tree with
// retraining at every merge. Only support vectors travel, so communication
// shrinks as the cascade ascends.

// userTagSV is the p2p tag for serialized support-vector sets.
const userTagSV = 17

// serializeSVSet packs vectors and ±1 labels into one float64 payload:
// [count, dim, rows..., labels...].
func serializeSVSet(x [][]float64, y []int) []float64 {
	dim := 0
	if len(x) > 0 {
		dim = len(x[0])
	}
	out := make([]float64, 0, 2+len(x)*dim+len(y))
	out = append(out, float64(len(x)), float64(dim))
	for _, row := range x {
		out = append(out, row...)
	}
	for _, l := range y {
		out = append(out, float64(l))
	}
	return out
}

// deserializeSVSet unpacks a payload produced by serializeSVSet.
func deserializeSVSet(buf []float64) ([][]float64, []int) {
	n := int(buf[0])
	dim := int(buf[1])
	x := make([][]float64, n)
	off := 2
	for i := range x {
		x[i] = append([]float64(nil), buf[off:off+dim]...)
		off += dim
	}
	y := make([]int, n)
	for i := range y {
		y[i] = int(buf[off+i])
	}
	return x, y
}

// svLabels recovers ±1 labels of a model's support vectors from the sign
// of their coefficients (coef = α·y with α > 0).
func svLabels(m *Model) []int {
	y := make([]int, len(m.Coef))
	for i, c := range m.Coef {
		if c >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return y
}

// TrainCascade trains a binary SVM over an mpi world of P ranks: rank r
// trains on its shard of (x, y), then support vectors merge up a binary
// tree (rank r receives from r+stride while r%2·stride==0) with a retrain
// at each level. Rank 0 broadcasts the final model's support set so every
// rank returns an identical model.
//
// It must be called inside world.Run; each rank passes its comm and its
// local shard.
func TrainCascade(c *mpi.Comm, localX [][]float64, localY []int, cfg Config) *Model {
	model := Train(localX, localY, cfg)
	svX, svY := model.SVs, svLabels(model)

	p := c.Size()
	for stride := 1; stride < p; stride *= 2 {
		if c.Rank()%(2*stride) == 0 {
			partner := c.Rank() + stride
			if partner < p {
				buf, _ := c.Recv(partner, userTagSV)
				ox, oy := deserializeSVSet(buf)
				svX = append(svX, ox...)
				svY = append(svY, oy...)
				model = Train(svX, svY, cfg)
				svX, svY = model.SVs, svLabels(model)
			}
		} else if c.Rank()%stride == 0 {
			c.Send(c.Rank()-stride, userTagSV, serializeSVSet(svX, svY))
			break
		}
	}

	// Rank 0 holds the fully merged model; broadcast its parameters so all
	// ranks return an identical classifier without redundant retraining.
	var payload []float64
	if c.Rank() == 0 {
		payload = serializeModel(model)
	}
	payload = c.Bcast(0, payload)
	return deserializeModel(payload, cfg.withDefaults().Kernel)
}

// serializeModel packs a trained model as [b, count, dim, coefs..., rows...].
func serializeModel(m *Model) []float64 {
	dim := 0
	if len(m.SVs) > 0 {
		dim = len(m.SVs[0])
	}
	out := make([]float64, 0, 3+len(m.Coef)+len(m.SVs)*dim)
	out = append(out, m.B, float64(len(m.SVs)), float64(dim))
	out = append(out, m.Coef...)
	for _, sv := range m.SVs {
		out = append(out, sv...)
	}
	return out
}

// deserializeModel unpacks a payload from serializeModel.
func deserializeModel(buf []float64, k Kernel) *Model {
	m := &Model{Kernel: k, B: buf[0]}
	n := int(buf[1])
	dim := int(buf[2])
	off := 3
	m.Coef = append([]float64(nil), buf[off:off+n]...)
	off += n
	m.SVs = make([][]float64, n)
	for i := range m.SVs {
		m.SVs[i] = append([]float64(nil), buf[off:off+dim]...)
		off += dim
	}
	return m
}

// ShardData splits (x, y) into p contiguous shards for cascade training.
func ShardData(x [][]float64, y []int, p int) ([][][]float64, [][]int) {
	if p < 1 {
		panic("svm: shard count must be >=1")
	}
	xs := make([][][]float64, p)
	ys := make([][]int, p)
	n := len(x)
	for r := 0; r < p; r++ {
		lo, hi := r*n/p, (r+1)*n/p
		xs[r] = x[lo:hi]
		ys[r] = y[lo:hi]
	}
	return xs, ys
}

// OneVsRest is a multiclass SVM composed of per-class binary models.
type OneVsRest struct {
	Models  []*Model
	Classes int
}

// TrainOneVsRest fits one binary SVM per class (class c vs. all others).
func TrainOneVsRest(x [][]float64, labels []int, classes int, cfg Config) *OneVsRest {
	if classes < 2 {
		panic(fmt.Sprintf("svm: need >=2 classes, got %d", classes))
	}
	ovr := &OneVsRest{Classes: classes, Models: make([]*Model, classes)}
	for cl := 0; cl < classes; cl++ {
		y := make([]int, len(labels))
		for i, l := range labels {
			if l == cl {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		ovr.Models[cl] = Train(x, y, cfg)
	}
	return ovr
}

// Predict returns the class with the largest decision value.
func (o *OneVsRest) Predict(x []float64) int {
	best, bestV := 0, o.Models[0].Decision(x)
	for cl := 1; cl < o.Classes; cl++ {
		if v := o.Models[cl].Decision(x); v > bestV {
			best, bestV = cl, v
		}
	}
	return best
}

// Accuracy evaluates multiclass accuracy.
func (o *OneVsRest) Accuracy(x [][]float64, labels []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if o.Predict(x[i]) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// Ensemble is a majority-vote committee of binary SVMs trained on
// bootstrap sub-samples — the construction the quantum-annealer study
// uses to overcome the annealer's training-set size limit (§III-C,
// ref [11]).
type Ensemble struct {
	Members []*Model
}

// VoteDecision returns the mean signed vote in [-1, 1].
func (e *Ensemble) VoteDecision(x []float64) float64 {
	s := 0.0
	for _, m := range e.Members {
		s += float64(m.Predict(x))
	}
	return s / float64(len(e.Members))
}

// Predict returns the majority-vote label.
func (e *Ensemble) Predict(x []float64) int {
	if e.VoteDecision(x) >= 0 {
		return 1
	}
	return -1
}

// Accuracy evaluates the ensemble on ±1-labeled data.
func (e *Ensemble) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if e.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}
