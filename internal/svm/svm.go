// Package svm implements the parallel and scalable Support Vector Machine
// of the paper's remote-sensing case study (§III, ref [16]: an MPI-based
// SVM used to speed up classification of RS images on CPU-only modules).
//
// The core is a simplified-SMO dual solver with linear and RBF kernels;
// parallel training uses the cascade-SVM scheme (shards are trained
// independently, their support vectors merged pairwise up a binary tree
// and retrained), running over the mpi runtime. One-vs-rest composition
// provides multiclass classification, and bootstrap ensembles provide the
// voting classifiers the quantum-annealer study reuses.
package svm

import (
	"fmt"
	"math"
	"math/rand"
)

// Kernel evaluates a Mercer kernel between two feature vectors.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// Linear is the dot-product kernel.
type Linear struct{}

// Eval returns a·b.
func (Linear) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Name returns "linear".
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian kernel exp(-γ‖a-b‖²).
type RBF struct{ Gamma float64 }

// Eval returns exp(-γ‖a-b‖²).
func (k RBF) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

// Name returns "rbf".
func (k RBF) Name() string { return "rbf" }

// Config tunes the SMO solver.
type Config struct {
	C         float64 // box constraint; default 1
	Tol       float64 // KKT tolerance; default 1e-3
	MaxPasses int     // passes without change before stopping; default 5
	MaxIter   int     // hard iteration cap; default 200 passes
	Kernel    Kernel  // default RBF{Gamma: 0.5}
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	if c.Kernel == nil {
		c.Kernel = RBF{Gamma: 0.5}
	}
	return c
}

// Model is a trained binary SVM. Labels are ±1.
type Model struct {
	SVs    [][]float64
	Coef   []float64 // αᵢ·yᵢ per support vector
	B      float64
	Kernel Kernel
}

// Train fits a binary SVM with simplified SMO (Platt's algorithm in the
// CS229 simplification: random second-choice working set, exact 2-point
// analytic solve). Labels must be ±1.
func Train(x [][]float64, y []int, cfg Config) *Model {
	cfg = cfg.withDefaults()
	n := len(x)
	if n == 0 || len(y) != n {
		panic(fmt.Sprintf("svm: bad training set sizes x=%d y=%d", n, len(y)))
	}
	for _, l := range y {
		if l != 1 && l != -1 {
			panic(fmt.Sprintf("svm: labels must be ±1, got %d", l))
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Precompute the kernel matrix (training sets here are cascade shards
	// or annealer sub-samples: small by construction).
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := cfg.Kernel.Eval(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
	}

	alpha := make([]float64, n)
	b := 0.0
	yf := make([]float64, n)
	for i, l := range y {
		yf[i] = float64(l)
	}
	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * yf[j] * k[i][j]
			}
		}
		return s
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - yf[i]
			if (yf[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (yf[i]*ei > cfg.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - yf[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(cfg.C, cfg.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-cfg.C)
					hi = math.Min(cfg.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*k[i][j] - k[i][i] - k[j][j]
				if eta >= 0 {
					continue
				}
				ajNew := aj - yf[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-7 {
					continue
				}
				aiNew := ai + yf[i]*yf[j]*(aj-ajNew)
				b1 := b - ei - yf[i]*(aiNew-ai)*k[i][i] - yf[j]*(ajNew-aj)*k[i][j]
				b2 := b - ej - yf[i]*(aiNew-ai)*k[i][j] - yf[j]*(ajNew-aj)*k[j][j]
				switch {
				case aiNew > 0 && aiNew < cfg.C:
					b = b1
				case ajNew > 0 && ajNew < cfg.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iter++
	}

	m := &Model{Kernel: cfg.Kernel, B: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			sv := append([]float64(nil), x[i]...)
			m.SVs = append(m.SVs, sv)
			m.Coef = append(m.Coef, alpha[i]*yf[i])
		}
	}
	return m
}

// Decision returns the signed margin of a sample.
func (m *Model) Decision(x []float64) float64 {
	s := m.B
	for i, sv := range m.SVs {
		s += m.Coef[i] * m.Kernel.Eval(sv, x)
	}
	return s
}

// Predict returns the ±1 label of a sample.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// Accuracy evaluates the model on labeled data (labels ±1).
func (m *Model) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// NumSVs returns the support-vector count.
func (m *Model) NumSVs() int { return len(m.SVs) }
