package tensor

import (
	"math/rand"
	"testing"
)

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 8)
	if a.Size() != 32 {
		t.Fatalf("Get(4,8) size = %d, want 32", a.Size())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("Get must return a zero-filled tensor")
		}
	}
	a.Data()[0] = 7
	ws.ReleaseAll()
	if ws.InUse() != 0 {
		t.Fatalf("InUse after ReleaseAll = %d, want 0", ws.InUse())
	}

	// Same size class: must recycle storage, not allocate, and must come
	// back zeroed despite the dirty write above.
	b := ws.Get(32)
	if b.Data()[0] != 0 {
		t.Fatal("recycled tensor not zero-filled")
	}
	if ws.Allocs() != 1 {
		t.Fatalf("Allocs = %d, want 1 (second Get must hit the free list)", ws.Allocs())
	}

	// Smaller request in the same capacity class reuses the same backing.
	ws.ReleaseAll()
	c := ws.Get(3, 7) // 21 elems, class of 32
	if ws.Allocs() != 1 {
		t.Fatalf("Allocs = %d, want 1 (21 elems fits the pooled cap-32 buffer)", ws.Allocs())
	}
	if c.Dim(0) != 3 || c.Dim(1) != 7 {
		t.Fatalf("reshaped borrow has shape %v", c.Shape())
	}
}

func TestWorkspacePut(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(16)
	b := ws.Get(16)
	ws.Put(a)
	if ws.InUse() != 1 {
		t.Fatalf("InUse after early Put = %d, want 1", ws.InUse())
	}
	// a's storage is back on the free list: the next same-class Get must
	// not allocate.
	c := ws.Get(16)
	if ws.Allocs() != 2 {
		t.Fatalf("Allocs = %d, want 2", ws.Allocs())
	}
	ws.Put(c)
	ws.Put(b)
	if ws.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", ws.InUse())
	}
}

func TestWorkspaceDoublePutPanics(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(8)
	ws.Put(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put must panic")
		}
	}()
	ws.Put(a)
}

func TestWorkspaceForeignPutPanics(t *testing.T) {
	ws := NewWorkspace()
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a non-borrowed tensor must panic")
		}
	}()
	ws.Put(New(8))
}

func TestNilWorkspaceDegradesToAlloc(t *testing.T) {
	var ws *Workspace
	a := ws.Get(2, 3)
	if a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("nil Get shape %v", a.Shape())
	}
	ws.Put(a)       // no-op, must not panic
	ws.ReleaseAll() // no-op
	if ws.InUse() != 0 || ws.Allocs() != 0 {
		t.Fatal("nil workspace must report zero usage")
	}
}

func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	ws := NewWorkspace()
	warm := func() {
		ws.ReleaseAll()
		ws.Get(4, 16)
		ws.Get(64)
		tmp := ws.Get(8, 8)
		ws.Put(tmp)
		ws.Get(8, 8)
	}
	warm()
	before := ws.Allocs()
	for i := 0; i < 100; i++ {
		warm()
	}
	if ws.Allocs() != before {
		t.Fatalf("steady-state pool misses: Allocs went %d -> %d", before, ws.Allocs())
	}
}

// TestIm2ColAdjoint checks that Col2Im is the exact adjoint of Im2Col:
// <Im2Col(x), y> == <x, Col2Im(y)> for random x, y. This is the property
// that makes the conv backward pass (dcols routed through Col2ImInto) the
// true gradient of the im2col-based forward.
func TestIm2ColAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		n, c, h, w, kh, kw, stride, pad int
	}{
		{1, 1, 4, 4, 3, 3, 1, 1},
		{2, 3, 5, 6, 3, 3, 2, 1},
		{2, 2, 6, 6, 2, 2, 2, 0},
		{1, 4, 7, 5, 3, 1, 1, 2},
	} {
		x := New(tc.n, tc.c, tc.h, tc.w)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		cols := Im2Col(x, tc.kh, tc.kw, tc.stride, tc.pad, tc.pad)
		y := New(cols.Shape()...)
		for i := range y.Data() {
			y.Data()[i] = rng.NormFloat64()
		}
		back := Col2Im(y, tc.n, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, tc.pad)

		dot := func(a, b *Tensor) float64 {
			s := 0.0
			for i, v := range a.Data() {
				s += v * b.Data()[i]
			}
			return s
		}
		lhs := dot(cols, y)
		rhs := dot(x, back)
		if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%+v: <Im2Col(x),y>=%g but <x,Col2Im(y)>=%g", tc, lhs, rhs)
		}
	}
}
