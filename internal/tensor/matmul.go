package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of result elements below
// which MatMul stays single-threaded; spawning goroutines for tiny products
// costs more than it saves.
const matmulParallelThreshold = 64 * 64

// MatMul returns a×b for 2-D tensors of shapes (M,K) and (K,N). The kernel
// is a cache-blocked ikj loop parallelized over row bands.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b, reusing out's storage. out must have
// shape (M,N) and is overwritten.
func MatMulInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: MatMulInto output shape mismatch")
	}
	out.Zero()
	workers := runtime.GOMAXPROCS(0)
	if m*n < matmulParallelThreshold || workers <= 1 {
		matmulRange(out.data, a.data, b.data, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := lo + band
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRange(out.data, a.data, b.data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRange computes rows [lo,hi) of out += a×b using an ikj ordering,
// which streams through b row-by-row and keeps the innermost loop a
// contiguous saxpy the compiler vectorizes well.
func matmulRange(out, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		orow := out[i*n : (i+1)*n]
		arow := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulT returns a×bᵀ for shapes (M,K) and (N,K): a common pattern in
// backprop, computed without materializing the transpose.
func MatMulT(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulT requires 2-D tensors")
	}
	m, n := a.shape[0], b.shape[0]
	out := New(m, n)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes out = a×bᵀ, reusing out's storage. out must have
// shape (M,N) and is overwritten.
func MatMulTInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, k2))
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	// Serial fast path first, before anything that could allocate: the
	// band closure below escapes to its goroutines, and materializing it
	// here would put a heap allocation on every small matmul.
	if m*n < matmulParallelThreshold || workers <= 1 {
		matmulTRange(out.data, a.data, b.data, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	band := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*band, (w+1)*band
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulTRange(out.data, a.data, b.data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulTRange computes rows [lo,hi) of out = a×bᵀ.
func matmulTRange(out, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p := range arow {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}

// TMatMul returns aᵀ×b for shapes (K,M) and (K,N) without materializing
// the transpose; used for weight gradients (xᵀ·dy).
func TMatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: TMatMul requires 2-D tensors")
	}
	m, n := a.shape[1], b.shape[1]
	out := New(m, n)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes out = aᵀ×b, reusing out's storage. out must have
// shape (M,N) and is overwritten.
func TMatMulInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", k, k2))
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: TMatMulInto output shape mismatch")
	}
	out.Zero()
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatVec returns a×x for a (M,K) matrix and length-K vector, as shape (M).
func MatVec(a, x *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: MatVec requires a 2-D matrix")
	}
	m, k := a.shape[0], a.shape[1]
	if x.Size() != k {
		panic("tensor: MatVec vector length mismatch")
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}
