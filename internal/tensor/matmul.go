package tensor

// The matmul family. Every entry point below is a thin shim over the
// shared GEMM engine in kernel.go: one floating-point contract (exactly
// rounded FMA accumulation in ascending-k order, seeded from the output's
// prior value), one parallel runtime (parallel.go), one packed blocked
// kernel, and optional fused epilogues (bias add + activation) that
// replace the separate AddRowVector/Apply passes the layers used to run.
//
// Naming: MatMul is a·b, MatMulT is a·bᵀ, TMatMul is aᵀ·b (none
// materialize a transpose). The Acc variants add on top of out instead of
// overwriting it — the FMA chain simply starts from out's current values,
// so out += a·b costs the same as out = a·b and needs no temporary.

// MatMul returns a×b for 2-D tensors of shapes (M,K) and (K,N).
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	out := NewOf(a.dtype, a.shape[0], b.shape[1])
	gemmEx(gemmNN, out, a, b, nil, EpNone, false)
	return out
}

// MatMulInto computes out = a×b, reusing out's storage. out must have
// shape (M,N) and is overwritten.
func MatMulInto(out, a, b *Tensor) {
	gemmEx(gemmNN, out, a, b, nil, EpNone, false)
}

// MatMulAccInto computes out += a×b.
func MatMulAccInto(out, a, b *Tensor) {
	gemmEx(gemmNN, out, a, b, nil, EpNone, true)
}

// MatMulBiasInto computes out = a×b + bias, with bias (length N)
// broadcast over rows — the fused Dense/conv forward. The bias is added
// with a plain + after the full-K accumulation, exactly matching the
// former separate AddRowVector pass.
func MatMulBiasInto(out, a, b, bias *Tensor) {
	gemmEx(gemmNN, out, a, b, bias, EpNone, false)
}

// MatMulBiasActInto computes out = act(a×b + bias) with the activation
// fused into the kernel's epilogue.
func MatMulBiasActInto(out, a, b, bias *Tensor, act Epilogue) {
	gemmEx(gemmNN, out, a, b, bias, act, false)
}

// MatMulAccBiasActInto computes out = act(out + a×b + bias): the fused
// GRU gate pattern (x·Wx already in out, then + h·Wh + bias, then the
// gate activation).
func MatMulAccBiasActInto(out, a, b, bias *Tensor, act Epilogue) {
	gemmEx(gemmNN, out, a, b, bias, act, true)
}

// MatMulT returns a×bᵀ for shapes (M,K) and (N,K): a common pattern in
// backprop, computed without materializing the transpose.
func MatMulT(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulT requires 2-D tensors")
	}
	out := NewOf(a.dtype, a.shape[0], b.shape[0])
	gemmEx(gemmNT, out, a, b, nil, EpNone, false)
	return out
}

// MatMulTInto computes out = a×bᵀ, reusing out's storage. out must have
// shape (M,N) and is overwritten.
func MatMulTInto(out, a, b *Tensor) {
	gemmEx(gemmNT, out, a, b, nil, EpNone, false)
}

// MatMulTAccInto computes out += a×bᵀ (input-gradient accumulation).
func MatMulTAccInto(out, a, b *Tensor) {
	gemmEx(gemmNT, out, a, b, nil, EpNone, true)
}

// TMatMul returns aᵀ×b for shapes (K,M) and (K,N) without materializing
// the transpose; used for weight gradients (xᵀ·dy).
func TMatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: TMatMul requires 2-D tensors")
	}
	out := NewOf(a.dtype, a.shape[1], b.shape[1])
	gemmEx(gemmTN, out, a, b, nil, EpNone, false)
	return out
}

// TMatMulInto computes out = aᵀ×b, reusing out's storage. out must have
// shape (M,N) and is overwritten.
func TMatMulInto(out, a, b *Tensor) {
	gemmEx(gemmTN, out, a, b, nil, EpNone, false)
}

// TMatMulAccInto computes out += aᵀ×b: the weight-gradient accumulation
// (W.Grad += xᵀ·dy) fused into the kernel, with no gradient temporary.
func TMatMulAccInto(out, a, b *Tensor) {
	gemmEx(gemmTN, out, a, b, nil, EpNone, true)
}

// MatVec returns a×x for a (M,K) matrix and length-K vector, as shape (M).
func MatVec(a, x *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: MatVec requires a 2-D matrix")
	}
	m, k := a.shape[0], a.shape[1]
	if x.Size() != k {
		panic("tensor: MatVec vector length mismatch")
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}
