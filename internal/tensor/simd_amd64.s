//go:build amd64

#include "textflag.h"

// The two hot kernels behind the packed/fused matmul and direct-conv
// paths, written against AVX2+FMA (gated at runtime by useAVX, see
// simd_amd64.go). Both accumulate with fused multiply-adds in ascending
// p order per output element, so their results are bit-identical to the
// scalar math.FMA reference kernels.

// func gemm4x8AVX(k int, ap, bp, c *float64, ldc int)
//
// C (a 4×8 tile at c with row stride ldc doubles) accumulates
// sum_p ap[p*4+r] * bp[p*8+j] on top of its current contents. Eight YMM
// accumulators hold the tile; each p step is two B-panel loads, four A
// broadcasts, and eight VFMADD231PD.
TEXT ·gemm4x8AVX(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8
	LEAQ (DX)(R8*1), R9
	LEAQ (DX)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD (R9), Y2
	VMOVUPD 32(R9), Y3
	VMOVUPD (R10), Y4
	VMOVUPD 32(R10), Y5
	VMOVUPD (R11), Y6
	VMOVUPD 32(R11), Y7
	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPD      (DI), Y8
	VMOVUPD      32(DI), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 24(SI), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $32, SI
	ADDQ         $64, DI
	DECQ         CX
	JNZ          loop

store:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, 32(R9)
	VMOVUPD Y4, (R10)
	VMOVUPD Y5, 32(R10)
	VMOVUPD Y6, (R11)
	VMOVUPD Y7, 32(R11)
	VZEROUPPER
	RET

// func axpyAVX(alpha float64, x, y *float64, n int)
//
// y[i] = fma(alpha, x[i], y[i]) for i in [0, n): the vectorized
// saxpy-with-FMA behind the direct (unpacked) matmul and conv kernels.
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), CX
	MOVQ         CX, BX
	SHRQ         $3, BX
	JZ           tail4

loop8:
	VMOVUPD     (DI), Y1
	VMOVUPD     32(DI), Y2
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VMOVUPD     Y1, (DI)
	VMOVUPD     Y2, 32(DI)
	ADDQ        $64, SI
	ADDQ        $64, DI
	DECQ        BX
	JNZ         loop8

tail4:
	TESTQ $4, CX
	JZ    tail1
	VMOVUPD     (DI), Y1
	VFMADD231PD (SI), Y0, Y1
	VMOVUPD     Y1, (DI)
	ADDQ        $32, SI
	ADDQ        $32, DI

tail1:
	ANDQ $3, CX
	JZ   done

scalar:
	VMOVSD      (DI), X1
	VMOVSD      (SI), X2
	VFMADD231SD X2, X0, X1
	VMOVSD      X1, (DI)
	ADDQ        $8, SI
	ADDQ        $8, DI
	DECQ        CX
	JNZ         scalar

done:
	VZEROUPPER
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
