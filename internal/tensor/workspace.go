package tensor

import (
	"fmt"
	"math/bits"
)

// Workspace is a size-bucketed tensor pool for hot-path reuse: Get borrows
// a zero-filled tensor (recycling storage from a free list keyed by
// capacity class), Put releases one early, and ReleaseAll recycles every
// outstanding borrow at once — the arena reset a training step or an
// inference batch performs at its start. After the first pass over a fixed
// set of shapes, the pool serves every request from its free lists and the
// steady state performs no heap allocation.
//
// Semantics:
//
//   - Get returns a zero-filled tensor, exactly like New, so pooled and
//     allocating code paths compute bitwise-identical results.
//   - Tensors borrowed from a workspace are valid until the owner's next
//     ReleaseAll. Holding one across that boundary is a use-after-release
//     bug, the same contract as any arena allocator.
//   - A Workspace is NOT safe for concurrent use. Each goroutine-owned
//     hot loop (one trainer rank, one serving backend, one dispatch
//     worker) owns its own instance. This mirrors how layers themselves
//     are single-goroutine objects.
//   - All methods are nil-safe: a nil *Workspace degrades to plain
//     allocation (Get == New, Put and ReleaseAll are no-ops), so code can
//     thread an optional workspace without branching at every call site.
//
// InUse reports the number of outstanding borrows; tests use it (plus the
// panics on double-Put / foreign-Put) as a leak check.
type Workspace struct {
	// free holds recycled tensors by capacity class: class c stores
	// tensors whose data capacity is exactly 1<<c (class 0 also holds
	// empty tensors). float32 tensors recycle through their own lists so
	// a slot never changes dtype.
	free   [maxSizeClass][]*Tensor
	free32 [maxSizeClass][]*Tensor
	// live tracks outstanding borrows so ReleaseAll can recycle them and
	// leak checks can count them. A borrowed tensor remembers its index
	// here (wsIdx) for O(1) early release.
	live []*Tensor

	gets, puts, news int
}

const maxSizeClass = 48

// NewWorkspace creates an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// sizeClass returns the free-list class for a payload of n float64s: the
// exponent of the next power of two ≥ n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get borrows a zero-filled float64 tensor of the given shape. On a nil
// workspace it is exactly New. The returned tensor must not be retained
// past the owner's next ReleaseAll.
func (w *Workspace) Get(shape ...int) *Tensor {
	return w.GetOf(Float64, shape...)
}

// GetOf borrows a zero-filled tensor of the given dtype and shape. On a
// nil workspace it is exactly NewOf.
func (w *Workspace) GetOf(dt DType, shape ...int) *Tensor {
	if w == nil {
		return NewOf(dt, shape...)
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Omitting the shape from the message keeps the variadic slice
			// from escaping (see New).
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	c := sizeClass(n)
	lists := &w.free
	if dt == Float32 {
		lists = &w.free32
	}
	var t *Tensor
	if fl := lists[c]; len(fl) > 0 {
		t = fl[len(fl)-1]
		fl[len(fl)-1] = nil
		lists[c] = fl[:len(fl)-1]
		if dt == Float32 {
			t.data32 = t.data32[:n]
			for i := range t.data32 {
				t.data32[i] = 0
			}
		} else {
			t.data = t.data[:n]
			for i := range t.data {
				t.data[i] = 0
			}
		}
		t.shape = append(t.shape[:0], shape...)
	} else {
		capN := 1
		if n > 1 {
			capN = 1 << c
		}
		t = &Tensor{shape: append([]int(nil), shape...), dtype: dt}
		if dt == Float32 {
			t.data32 = make([]float32, n, capN)
		} else {
			t.data = make([]float64, n, capN)
		}
		w.news++
	}
	t.wsIdx = len(w.live)
	w.live = append(w.live, t)
	w.gets++
	return t
}

// Put releases a borrowed tensor back to its free list before the next
// ReleaseAll — the early-release path tight loops (a GRU's timestep
// scratch) use to keep the pool small. Panics if t was not borrowed from
// this workspace or was already released: that panic is the leak/double-
// free check the tests lean on. No-op on a nil workspace or nil tensor.
func (w *Workspace) Put(t *Tensor) {
	if w == nil || t == nil {
		return
	}
	if t.wsIdx < 0 || t.wsIdx >= len(w.live) || w.live[t.wsIdx] != t {
		panic("tensor: Put of tensor not currently borrowed from this workspace")
	}
	// Swap-remove from the live list, fixing the moved tensor's index.
	last := len(w.live) - 1
	moved := w.live[last]
	w.live[t.wsIdx] = moved
	moved.wsIdx = t.wsIdx
	w.live[last] = nil
	w.live = w.live[:last]
	w.recycle(t)
	w.puts++
}

// ReleaseAll recycles every outstanding borrow: the arena reset performed
// at the top of a training step or inference batch. Tensors handed out by
// Get before this call must no longer be used. No-op on nil.
func (w *Workspace) ReleaseAll() {
	if w == nil {
		return
	}
	for i, t := range w.live {
		w.recycle(t)
		w.live[i] = nil
	}
	w.live = w.live[:0]
	w.puts = w.gets
}

func (w *Workspace) recycle(t *Tensor) {
	t.wsIdx = -1
	capN := cap(t.data)
	lists := &w.free
	if t.dtype == Float32 {
		capN = cap(t.data32)
		lists = &w.free32
	}
	c := sizeClass(capN)
	// Only pow-of-two capacities are pooled; Get allocates them that way,
	// so this is just a guard against foreign tensors sneaking in.
	if capN == 0 || capN == 1<<c || capN == 1 {
		lists[c] = append(lists[c], t)
	}
}

// InUse returns the number of outstanding borrows — 0 after a clean
// ReleaseAll; tests assert this to catch leaks.
func (w *Workspace) InUse() int {
	if w == nil {
		return 0
	}
	return len(w.live)
}

// Allocs returns how many tensors the workspace has allocated fresh (pool
// misses) over its lifetime; a steady-state hot loop stops increasing it.
func (w *Workspace) Allocs() int {
	if w == nil {
		return 0
	}
	return w.news
}
