package tensor

import (
	"math/bits"
	"sync"
)

// Panel packing for the blocked matmul (kernel.go). B column strips are
// packed once per (kc×nc) block into 8-wide p-major panels and shared by
// every row chunk; each chunk packs its own 4-row A panel. Packing is
// pure data movement (plus float32→float64 widening on the float32
// storage path), so it never changes results — the micro-kernel still
// accumulates each output element in ascending p order.
//
// Layouts:
//
//	B scratch: panel j8 = columns [8*j8, 8*j8+8) of the strip, laid out
//	           dst[j8*kb*8 + p*8 + j], zero-padded on the right edge.
//	A scratch: dst[p*4 + r] for block rows r, zero-padded past mb.
//
// Zero padding is what lets edge tiles reuse the full 4×8 kernel: padded
// rows/columns accumulate exact zeros into tile lanes that are never
// stored back.

// The scratch free lists recycle packing buffers across calls and
// goroutines, bucketed by power-of-two capacity class so a get never
// pops a buffer too small for its request (a single mixed-size pool
// would drop undersized buffers and re-allocate every call when A-panel
// and B-panel scratch interleave). A plain mutex-guarded stack — not
// sync.Pool, whose race-mode Put randomly drops buffers and would break
// the steady-state zero-allocation gates under -race — with a small
// per-class retention bound. The critical section is a pointer push/pop,
// negligible next to the packed matmuls that call it.
var (
	scratchMu   sync.Mutex
	scratchFree [48][]*[]float64
)

const scratchPerClass = 8

func getScratch(n int) *[]float64 {
	c := 0
	if n > 1 {
		c = bits.Len(uint(n - 1))
	}
	scratchMu.Lock()
	if l := scratchFree[c]; len(l) > 0 {
		p := l[len(l)-1]
		l[len(l)-1] = nil
		scratchFree[c] = l[:len(l)-1]
		scratchMu.Unlock()
		*p = (*p)[:n]
		return p
	}
	scratchMu.Unlock()
	s := make([]float64, n, 1<<c)
	return &s
}

func putScratch(p *[]float64) {
	c := 0
	if cap(*p) > 1 {
		c = bits.Len(uint(cap(*p) - 1))
	}
	scratchMu.Lock()
	if len(scratchFree[c]) < scratchPerClass {
		scratchFree[c] = append(scratchFree[c], p)
	}
	scratchMu.Unlock()
}

// packBRows64 packs B strip rows [p0,p0+kb) × cols [j0,j0+nb) from a
// (·,ldb) row-major matrix (the NN and TN cases, where B is b itself).
func packBRows64(dst, b []float64, ldb, p0, kb, j0, nb int) {
	panels := (nb + 7) / 8
	for j8 := 0; j8 < panels; j8++ {
		jc := j0 + j8*8
		w := nb - j8*8
		if w > 8 {
			w = 8
		}
		out := dst[j8*kb*8 : (j8+1)*kb*8]
		for p := 0; p < kb; p++ {
			src := b[(p0+p)*ldb+jc : (p0+p)*ldb+jc+w]
			d := out[p*8 : p*8+8]
			copy(d, src)
			for x := w; x < 8; x++ {
				d[x] = 0
			}
		}
	}
}

// packBCols64 packs B = bᵀ for the NT case: b is (n,k) row-major and
// B[p][j] = b[(j0+j)*ldb + p0+p]. Each packed column is a contiguous
// run of a b row, so the copy streams.
func packBCols64(dst, b []float64, ldb, p0, kb, j0, nb int) {
	panels := (nb + 7) / 8
	for j8 := 0; j8 < panels; j8++ {
		jc := j0 + j8*8
		w := nb - j8*8
		if w > 8 {
			w = 8
		}
		out := dst[j8*kb*8 : (j8+1)*kb*8]
		for x := 0; x < 8; x++ {
			if x >= w {
				for p := 0; p < kb; p++ {
					out[p*8+x] = 0
				}
				continue
			}
			src := b[(jc+x)*ldb+p0 : (jc+x)*ldb+p0+kb]
			for p, v := range src {
				out[p*8+x] = v
			}
		}
	}
}

// packARows64 packs a 4-row A block (rows [i0,i0+mb) × cols [p0,p0+kb))
// from a (·,lda) row-major matrix (NN and NT cases).
func packARows64(dst, a []float64, lda, i0, mb, p0, kb int) {
	for r := 0; r < 4; r++ {
		if r >= mb {
			for p := 0; p < kb; p++ {
				dst[p*4+r] = 0
			}
			continue
		}
		src := a[(i0+r)*lda+p0 : (i0+r)*lda+p0+kb]
		for p, v := range src {
			dst[p*4+r] = v
		}
	}
}

// packACols64 packs A = aᵀ for the TN case: a is (k,m) row-major and
// A[i][p] = a[(p0+p)*lda + i0+i].
func packACols64(dst, a []float64, lda, i0, mb, p0, kb int) {
	for p := 0; p < kb; p++ {
		src := a[(p0+p)*lda+i0 : (p0+p)*lda+i0+mb]
		d := dst[p*4 : p*4+4]
		copy(d, src)
		for r := mb; r < 4; r++ {
			d[r] = 0
		}
	}
}

// float32 variants: identical layouts, widening on the fly so the same
// float64 micro-kernel serves float32 storage with float64 accumulation.

func packBRows32(dst []float64, b []float32, ldb, p0, kb, j0, nb int) {
	panels := (nb + 7) / 8
	for j8 := 0; j8 < panels; j8++ {
		jc := j0 + j8*8
		w := nb - j8*8
		if w > 8 {
			w = 8
		}
		out := dst[j8*kb*8 : (j8+1)*kb*8]
		for p := 0; p < kb; p++ {
			src := b[(p0+p)*ldb+jc : (p0+p)*ldb+jc+w]
			d := out[p*8 : p*8+8]
			for x, v := range src {
				d[x] = float64(v)
			}
			for x := w; x < 8; x++ {
				d[x] = 0
			}
		}
	}
}

func packBCols32(dst []float64, b []float32, ldb, p0, kb, j0, nb int) {
	panels := (nb + 7) / 8
	for j8 := 0; j8 < panels; j8++ {
		jc := j0 + j8*8
		w := nb - j8*8
		if w > 8 {
			w = 8
		}
		out := dst[j8*kb*8 : (j8+1)*kb*8]
		for x := 0; x < 8; x++ {
			if x >= w {
				for p := 0; p < kb; p++ {
					out[p*8+x] = 0
				}
				continue
			}
			src := b[(jc+x)*ldb+p0 : (jc+x)*ldb+p0+kb]
			for p, v := range src {
				out[p*8+x] = float64(v)
			}
		}
	}
}

func packARows32(dst []float64, a []float32, lda, i0, mb, p0, kb int) {
	for r := 0; r < 4; r++ {
		if r >= mb {
			for p := 0; p < kb; p++ {
				dst[p*4+r] = 0
			}
			continue
		}
		src := a[(i0+r)*lda+p0 : (i0+r)*lda+p0+kb]
		for p, v := range src {
			dst[p*4+r] = float64(v)
		}
	}
}

func packACols32(dst []float64, a []float32, lda, i0, mb, p0, kb int) {
	for p := 0; p < kb; p++ {
		src := a[(p0+p)*lda+i0 : (p0+p)*lda+i0+mb]
		d := dst[p*4 : p*4+4]
		for r, v := range src {
			d[r] = float64(v)
		}
		for r := mb; r < 4; r++ {
			d[r] = 0
		}
	}
}
