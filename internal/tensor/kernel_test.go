package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// bitEqual64 reports whether two float64 tensors are bitwise identical
// (NaN == NaN, +0 != -0).
func bitEqual64(a, b *Tensor) bool {
	ad, bd := a.Data(), b.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	return true
}

func bitEqual32(a, b *Tensor) bool {
	ad, bd := a.Data32(), b.Data32()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if math.Float32bits(ad[i]) != math.Float32bits(bd[i]) {
			return false
		}
	}
	return true
}

// kernelShapes covers tile remainders (4-row and 8-col micro-kernel
// edges), odd primes, degenerate dims, and sizes on both sides of the
// packed-path threshold (2·m·n·k ≷ packMinFlops).
var kernelShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {3, 5, 9}, {4, 8, 8}, {5, 9, 17},
	{7, 13, 11}, {8, 16, 24}, {16, 31, 33}, {33, 17, 65},
	{40, 64, 56}, {64, 64, 64}, {65, 67, 63}, {96, 70, 90},
	{128, 33, 129},
}

func randn2(rng *rand.Rand, r, c int) *Tensor { return Randn(rng, 1, r, c) }

func TestGemmBitwiseVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range kernelShapes {
		m, k, n := s[0], s[1], s[2]
		a := randn2(rng, m, k)
		b := randn2(rng, k, n)
		bt := randn2(rng, n, k)
		at := randn2(rng, k, m)

		got, want := New(m, n), New(m, n)
		MatMulInto(got, a, b)
		RefMatMulInto(want, a, b)
		if !bitEqual64(got, want) {
			t.Fatalf("MatMulInto %dx%dx%d differs from reference", m, k, n)
		}
		MatMulTInto(got, a, bt)
		RefMatMulTInto(want, a, bt)
		if !bitEqual64(got, want) {
			t.Fatalf("MatMulTInto %dx%dx%d differs from reference", m, k, n)
		}
		TMatMulInto(got, at, b)
		RefTMatMulInto(want, at, b)
		if !bitEqual64(got, want) {
			t.Fatalf("TMatMulInto %dx%dx%d differs from reference", m, k, n)
		}
	}
}

func TestGemmFusedVariantsVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	eps := []Epilogue{EpNone, EpReLU, EpSigmoid, EpTanh}
	for _, s := range kernelShapes {
		m, k, n := s[0], s[1], s[2]
		a := randn2(rng, m, k)
		b := randn2(rng, k, n)
		bias := randn2(rng, 1, n)
		seed := randn2(rng, m, n)
		for _, ep := range eps {
			got, want := seed.Clone(), seed.Clone()
			gemmEx(gemmNN, got, a, b, bias, ep, true)
			refGemm(gemmNN, want, a, b, bias, ep, true)
			if !bitEqual64(got, want) {
				t.Fatalf("acc+bias+ep%d %dx%dx%d differs from reference", ep, m, k, n)
			}
			MatMulBiasActInto(got, a, b, bias, ep)
			refGemm(gemmNN, want, a, b, bias, ep, false)
			if !bitEqual64(got, want) {
				t.Fatalf("MatMulBiasActInto ep%d %dx%dx%d differs from reference", ep, m, k, n)
			}
		}
		// Accumulating transpose variants (the backward-pass workhorses).
		bt := randn2(rng, n, k)
		at := randn2(rng, k, m)
		got, want := seed.Clone(), seed.Clone()
		MatMulTAccInto(got, a, bt)
		refGemm(gemmNT, want, a, bt, nil, EpNone, true)
		if !bitEqual64(got, want) {
			t.Fatalf("MatMulTAccInto %dx%dx%d differs from reference", m, k, n)
		}
		TMatMulAccInto(got, at, b)
		refGemm(gemmTN, want, at, b, nil, EpNone, true)
		if !bitEqual64(got, want) {
			t.Fatalf("TMatMulAccInto %dx%dx%d differs from reference", m, k, n)
		}
	}
}

// TestGemmNaNInfPropagation pins the regression fixed in this PR: the old
// kernels skipped a==0 terms, so a zero in A silently swallowed a NaN or
// Inf in B. IEEE 0·NaN = NaN and 0·Inf = NaN must reach the output.
func TestGemmNaNInfPropagation(t *testing.T) {
	for _, mk := range [][3]int{{3, 5, 4}, {33, 65, 40}} {
		m, k, n := mk[0], mk[1], mk[2]
		rng := rand.New(rand.NewSource(7))
		a := randn2(rng, m, k)
		for i := 0; i < m; i++ { // zero column hitting the poisoned B row

			a.Set(0, i, k-1)
		}
		for _, poison := range []float64{math.NaN(), math.Inf(1)} {
			b := randn2(rng, k, n)
			for j := 0; j < n; j++ {
				b.Set(poison, k-1, j)
			}
			out := New(m, n)
			MatMulInto(out, a, b)
			for _, v := range out.Data() {
				if !math.IsNaN(v) {
					t.Fatalf("0*%v must poison the output (got %v); zero-skip bug is back", poison, v)
				}
			}
			// Transposed variants share gemmEx, but the NT/TN small paths
			// are separate kernels: pin them too.
			btr := New(n, k)
			for j := 0; j < n; j++ {
				for p := 0; p < k; p++ {
					btr.Set(b.At(p, j), j, p)
				}
			}
			MatMulTInto(out, a, btr)
			if !math.IsNaN(out.At(0, 0)) {
				t.Fatalf("MatMulT lost 0*%v poisoning", poison)
			}
			atr := New(k, m)
			for i := 0; i < m; i++ {
				for p := 0; p < k; p++ {
					atr.Set(a.At(i, p), p, i)
				}
			}
			TMatMulInto(out, atr, b)
			if !math.IsNaN(out.At(0, 0)) {
				t.Fatalf("TMatMul lost 0*%v poisoning", poison)
			}
		}
	}
}

// TestGemmFloat32 pins the float32 storage path: bitwise equal to the
// float32 reference (same widen→f64-chain→round-once recipe) and within
// 1e-6 relative of the float64 result.
func TestGemmFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, s := range kernelShapes {
		m, k, n := s[0], s[1], s[2]
		a64 := randn2(rng, m, k)
		b64 := randn2(rng, k, n)
		bias64 := randn2(rng, 1, n)
		a32, b32, bias32 := a64.Convert(Float32), b64.Convert(Float32), bias64.Convert(Float32)

		got, want := NewOf(Float32, m, n), NewOf(Float32, m, n)
		gemmEx(gemmNN, got, a32, b32, bias32, EpReLU, false)
		refGemm(gemmNN, want, a32, b32, bias32, EpReLU, false)
		if !bitEqual32(got, want) {
			t.Fatalf("float32 NN %dx%dx%d differs from float32 reference", m, k, n)
		}
		bt64 := randn2(rng, n, k)
		bt32 := bt64.Convert(Float32)
		gemmEx(gemmNT, got, a32, bt32, nil, EpNone, false)
		refGemm(gemmNT, want, a32, bt32, nil, EpNone, false)
		if !bitEqual32(got, want) {
			t.Fatalf("float32 NT %dx%dx%d differs from float32 reference", m, k, n)
		}
		at64 := randn2(rng, k, m)
		at32 := at64.Convert(Float32)
		gemmEx(gemmTN, got, at32, b32, nil, EpNone, false)
		refGemm(gemmTN, want, at32, b32, nil, EpNone, false)
		if !bitEqual32(got, want) {
			t.Fatalf("float32 TN %dx%dx%d differs from float32 reference", m, k, n)
		}

		// Accuracy vs the float64 path: the widened-inputs chain differs
		// from true f64 only by input quantization and the final rounding.
		f64out := New(m, n)
		MatMulInto(f64out, a64.Convert(Float32).Convert(Float64), b64.Convert(Float32).Convert(Float64))
		gemmEx(gemmNN, got, a32, b32, nil, EpNone, false)
		g32 := got.Data32()
		for i, v := range f64out.Data() {
			rel := math.Abs(float64(g32[i])-v) / math.Max(math.Abs(v), 1)
			if rel > 1e-6 {
				t.Fatalf("float32 %dx%dx%d relative error %g > 1e-6 at %d", m, k, n, rel, i)
			}
		}
	}
}

// TestGemmWorkerInvariance pins that results do not depend on the worker
// count or grain: the parallel split changes which goroutine computes a
// row range, never the per-element FMA chain.
func TestGemmWorkerInvariance(t *testing.T) {
	w, g := Workers(), loadCfg().grain
	t.Cleanup(func() { Configure(WithWorkers(w), WithGrain(g)) })
	rng := rand.New(rand.NewSource(45))
	a := randn2(rng, 65, 67)
	b := randn2(rng, 67, 63)
	bias := randn2(rng, 1, 63)

	Configure(WithWorkers(1))
	serial := New(65, 63)
	MatMulBiasActInto(serial, a, b, bias, EpTanh)
	for _, workers := range []int{2, 3, 4, 8} {
		Configure(WithWorkers(workers), WithGrain(1024))
		got := New(65, 63)
		MatMulBiasActInto(got, a, b, bias, EpTanh)
		if !bitEqual64(got, serial) {
			t.Fatalf("workers=%d changes matmul bits", workers)
		}
	}
}

// TestGemmAsmVsGo cross-checks the assembly micro-kernels against the
// portable math.FMA fallbacks bit for bit. On hosts without AVX2+FMA (or
// off amd64) both runs take the Go path and the test is vacuous but
// harmless.
func TestGemmAsmVsGo(t *testing.T) {
	orig := useAVX
	t.Cleanup(func() { useAVX = orig })
	rng := rand.New(rand.NewSource(46))
	for _, s := range [][3]int{{33, 65, 40}, {64, 64, 64}, {5, 9, 17}} {
		m, k, n := s[0], s[1], s[2]
		a := randn2(rng, m, k)
		b := randn2(rng, k, n)
		useAVX = orig
		fast := New(m, n)
		MatMulInto(fast, a, b)
		useAVX = false
		slow := New(m, n)
		MatMulInto(slow, a, b)
		if !bitEqual64(fast, slow) {
			t.Fatalf("asm and Go kernels disagree at %dx%dx%d", m, k, n)
		}
	}
}

func TestConvDirectVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cases := []struct{ n, c, h, w, outC, kh, kw, padH, padW int }{
		{1, 1, 5, 5, 1, 3, 3, 1, 1},
		{2, 3, 9, 7, 4, 3, 3, 1, 1},
		{1, 2, 8, 8, 3, 5, 5, 2, 2},
		{2, 4, 13, 11, 5, 3, 5, 0, 2},
		{3, 2, 6, 6, 2, 1, 1, 0, 0},
		{1, 3, 16, 16, 8, 3, 3, 1, 1},
	}
	for _, tc := range cases {
		img := Randn(rng, 1, tc.n, tc.c, tc.h, tc.w)
		w := Randn(rng, 1, tc.c*tc.kh*tc.kw, tc.outC)
		bias := Randn(rng, 1, tc.outC)
		oh := ConvDims(tc.h, tc.kh, 1, tc.padH)
		ow := ConvDims(tc.w, tc.kw, 1, tc.padW)
		got := New(tc.n, tc.outC, oh, ow)
		want := New(tc.n, tc.outC, oh, ow)
		Conv2DBiasInto(nil, got, img, w, bias, tc.kh, tc.kw, 1, tc.padH, tc.padW)
		RefConv2DInto(want, img, w, bias, tc.kh, tc.kw, tc.padH, tc.padW)
		if !bitEqual64(got, want) {
			t.Fatalf("direct conv differs from reference: %+v", tc)
		}
		// Without bias too (nil bias branch).
		Conv2DBiasInto(nil, got, img, w, nil, tc.kh, tc.kw, 1, tc.padH, tc.padW)
		RefConv2DInto(want, img, w, nil, tc.kh, tc.kw, tc.padH, tc.padW)
		if !bitEqual64(got, want) {
			t.Fatalf("direct conv (no bias) differs from reference: %+v", tc)
		}
	}
}

// TestConvStridedFallback checks the stride!=1 im2col fallback against a
// naive strided loop (close, not bitwise: the matmul reduction order over
// the im2col layout is a documented difference).
func TestConvStridedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	n, c, h, wd, outC, kh, kw, stride, pad := 2, 3, 9, 9, 4, 3, 3, 2, 1
	img := Randn(rng, 1, n, c, h, wd)
	w := Randn(rng, 1, c*kh*kw, outC)
	bias := Randn(rng, 1, outC)
	oh := ConvDims(h, kh, stride, pad)
	ow := ConvDims(wd, kw, stride, pad)
	got := New(n, outC, oh, ow)
	ws := NewWorkspace()
	Conv2DBiasInto(ws, got, img, w, bias, kh, kw, stride, pad, pad)
	for b := 0; b < n; b++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := bias.Data()[oc]
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								acc += img.Data()[((b*c+ch)*h+iy)*wd+ix] * w.Data()[((ch*kh+ky)*kw+kx)*outC+oc]
							}
						}
					}
					if diff := math.Abs(got.Data()[((b*outC+oc)*oh+oy)*ow+ox] - acc); diff > 1e-9 {
						t.Fatalf("strided conv off by %g at (%d,%d,%d,%d)", diff, b, oc, oy, ox)
					}
				}
			}
		}
	}
}

func TestDTypeBasics(t *testing.T) {
	t32 := NewOf(Float32, 2, 3)
	if t32.DType() != Float32 || t32.Size() != 6 {
		t.Fatal("NewOf(Float32) metadata")
	}
	t32.Set(1.5, 0, 1)
	if t32.At(0, 1) != 1.5 {
		t.Fatal("float32 At/Set")
	}
	f := FromSlice32([]float32{1, 2, 3, 4}, 2, 2)
	back := f.Convert(Float64).Convert(Float32)
	if !bitEqual32(f, back) {
		t.Fatal("Convert round trip must be exact for float32 values")
	}
	cl := f.Clone()
	cl.Set(9, 0, 0)
	if f.At(0, 0) == 9 {
		t.Fatal("Clone must deep-copy float32 storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Data() on float32 tensor must panic")
		}
	}()
	_ = f.Data()
}

func TestWorkspaceGetOfDTypes(t *testing.T) {
	ws := NewWorkspace()
	a := ws.GetOf(Float32, 4, 4)
	b := ws.Get(4, 4)
	if a.DType() != Float32 || b.DType() != Float64 {
		t.Fatal("GetOf dtype")
	}
	a.Data32()[0] = 1
	ws.Put(a)
	ws.Put(b)
	a2 := ws.GetOf(Float32, 4, 4)
	if a2.DType() != Float32 {
		t.Fatal("float32 free list must return float32 tensors")
	}
	if a2.Data32()[0] != 0 {
		t.Fatal("reused workspace tensor must be zeroed")
	}
	b2 := ws.Get(4, 4)
	if b2.DType() != Float64 {
		t.Fatal("float64 free list polluted by float32 tensor")
	}
}

func BenchmarkMatMulGFLOPS(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		for _, dt := range []DType{Float64, Float32} {
			b.Run(fmt.Sprintf("n=%d/%s", n, dt), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				x := Randn(rng, 1, n, n).Convert(dt)
				y := Randn(rng, 1, n, n).Convert(dt)
				out := NewOf(dt, n, n)
				flops := 2 * float64(n) * float64(n) * float64(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulInto(out, x, y)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			})
		}
	}
}

func BenchmarkConvGFLOPS(b *testing.B) {
	// BigEarthNet-scale stride-1 layer: 8×(16→32)×64×64, 3×3, pad 1.
	n, c, h, w, outC, k := 8, 16, 64, 64, 32, 3
	rng := rand.New(rand.NewSource(2))
	img := Randn(rng, 1, n, c, h, w)
	wt := Randn(rng, 1, c*k*k, outC)
	bias := Randn(rng, 1, outC)
	out := New(n, outC, h, w)
	flops := 2 * float64(n) * float64(outC) * float64(h) * float64(w) * float64(c) * float64(k) * float64(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DBiasInto(nil, out, img, wt, bias, k, k, 1, 1, 1)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}
