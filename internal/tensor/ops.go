package tensor

import (
	"fmt"
	"math"
)

// checkSame panics unless a and b have identical shapes and dtypes.
func checkSame(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
	if a.dtype != b.dtype {
		panic(fmt.Sprintf("tensor: %s dtype mismatch %v vs %v", op, a.dtype, b.dtype))
	}
}

// Add returns a+b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	return AddInto(NewOf(a.dtype, a.shape...), a, b)
}

// Sub returns a-b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	return SubInto(NewOf(a.dtype, a.shape...), a, b)
}

// Mul returns a*b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	return MulInto(NewOf(a.dtype, a.shape...), a, b)
}

// Div returns a/b elementwise.
func Div(a, b *Tensor) *Tensor {
	checkSame("Div", a, b)
	return DivInto(NewOf(a.dtype, a.shape...), a, b)
}

// AddInPlace sets a += b.
func (t *Tensor) AddInPlace(b *Tensor) *Tensor { return AddInto(t, t, b) }

// SubInPlace sets a -= b.
func (t *Tensor) SubInPlace(b *Tensor) *Tensor { return SubInto(t, t, b) }

// MulInPlace sets a *= b elementwise.
func (t *Tensor) MulInPlace(b *Tensor) *Tensor { return MulInto(t, t, b) }

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) *Tensor {
	VecScaleInto(t.data, t.data, s)
	return t
}

// AddScalar adds s to every element in place.
func (t *Tensor) AddScalar(s float64) *Tensor {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// Axpy performs t += alpha*x (BLAS axpy) in place.
func (t *Tensor) Axpy(alpha float64, x *Tensor) *Tensor {
	checkSame("Axpy", t, x)
	AxpyInto(t.data, alpha, x.data)
	return t
}

// Apply returns a new tensor with f applied to each element.
//
// Deprecated: use ApplyInto with caller-managed (typically
// Workspace-pooled) storage; this wrapper allocates on every call.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	return ApplyInto(NewOf(a.dtype, a.shape...), a, f)
}

// ApplyInPlace applies f to each element in place.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	return ApplyInto(t, t, f)
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. Panics on empty tensors.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. Panics on empty tensors.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgmaxRows returns, for a 2-D tensor, the argmax of each row.
func (t *Tensor) ArgmaxRows() []int {
	if len(t.shape) != 2 {
		panic("tensor: ArgmaxRows requires a 2-D tensor")
	}
	return t.ArgmaxRowsInto(nil)
}

// SumAxis0 reduces a 2-D tensor over rows, returning a length-C vector
// shaped (C).
func SumAxis0(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SumAxis0 requires a 2-D tensor")
	}
	return SumAxis0Into(New(a.shape[1]), a)
}

// MeanAxis0 reduces a 2-D tensor over rows by averaging.
func MeanAxis0(a *Tensor) *Tensor {
	out := SumAxis0(a)
	if a.shape[0] > 0 {
		out.Scale(1 / float64(a.shape[0]))
	}
	return out
}

// AddRowVector adds vector v (shape (C)) to every row of the 2-D tensor in
// place.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if len(t.shape) != 2 || len(v.data) != t.shape[1] {
		panic("tensor: AddRowVector shape mismatch")
	}
	r, c := t.shape[0], t.shape[1]
	for i := 0; i < r; i++ {
		row := t.data[i*c : (i+1)*c]
		for j := range row {
			row[j] += v.data[j]
		}
	}
	return t
}

// MulRowVector multiplies every row of the 2-D tensor by v elementwise, in
// place.
func (t *Tensor) MulRowVector(v *Tensor) *Tensor {
	if len(t.shape) != 2 || len(v.data) != t.shape[1] {
		panic("tensor: MulRowVector shape mismatch")
	}
	r, c := t.shape[0], t.shape[1]
	for i := 0; i < r; i++ {
		row := t.data[i*c : (i+1)*c]
		for j := range row {
			row[j] *= v.data[j]
		}
	}
	return t
}

// SoftmaxRows returns the row-wise softmax of a 2-D tensor, computed with
// the max-subtraction trick for numerical stability.
func SoftmaxRows(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SoftmaxRows requires a 2-D tensor")
	}
	return SoftmaxRowsInto(New(a.shape...), a)
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	return TransposeInto(New(a.shape[1], a.shape[0]), a)
}

// Clip bounds each element to [lo, hi] in place.
func (t *Tensor) Clip(lo, hi float64) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}
