package tensor

import "math"

// The shared GEMM engine behind MatMulInto, MatMulTInto, TMatMulInto and
// their fused bias/activation/accumulate variants (matmul.go).
//
// Floating-point contract, shared by every path (scalar reference, packed
// AVX2 kernel, axpy small path, any worker split): each output element is
// an exactly-rounded FMA chain over products in ascending p order, seeded
// from the element's prior value (out is zeroed first when not
// accumulating). Bias is added with a plain + after the full-K chain,
// then the activation is applied. For float32 storage the whole chain
// runs in float64 (inputs widened exactly) and rounds to float32 once,
// after the epilogue. Because every path follows the same recipe, results
// are bitwise identical across kernels, architectures, and worker counts
// — kernel_test.go pins this against the Ref* kernels below.

// Epilogue selects the activation fused after the bias add.
type Epilogue uint8

const (
	EpNone Epilogue = iota
	EpReLU
	EpSigmoid
	EpTanh
)

func applyEp(v float64, ep Epilogue) float64 {
	switch ep {
	case EpReLU:
		if v <= 0 {
			return 0
		}
		return v
	case EpSigmoid:
		return 1 / (1 + math.Exp(-v))
	case EpTanh:
		return math.Tanh(v)
	}
	return v
}

type gemmKind uint8

const (
	gemmNN gemmKind = iota // out = a·b        a (m,k), b (k,n)
	gemmNT                 // out = a·bᵀ       a (m,k), b (n,k)
	gemmTN                 // out = aᵀ·b       a (k,m), b (k,n)
)

// packMinFlops is the problem size (2·m·n·k flops) below which the
// packing overhead outweighs the blocked kernel and the direct small
// paths win.
const packMinFlops = 1 << 17

// gemmEx is the single entry point for the matmul family.
func gemmEx(kind gemmKind, out, a, b, bias *Tensor, ep Epilogue, acc bool) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(out.shape) != 2 {
		panic("tensor: matmul requires 2-D tensors")
	}
	var m, k, n, k2 int
	switch kind {
	case gemmNN:
		m, k = a.shape[0], a.shape[1]
		k2, n = b.shape[0], b.shape[1]
	case gemmNT:
		m, k = a.shape[0], a.shape[1]
		n, k2 = b.shape[0], b.shape[1]
	case gemmTN:
		k, m = a.shape[0], a.shape[1]
		k2, n = b.shape[0], b.shape[1]
	}
	if k != k2 {
		panic("tensor: matmul inner dimensions disagree")
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: matmul output shape mismatch")
	}
	if a.dtype != b.dtype || out.dtype != a.dtype {
		panic("tensor: matmul dtype mismatch")
	}
	if out == a || out == b {
		panic("tensor: matmul output must not alias an input")
	}
	var bias64 []float64
	var bias32 []float32
	if bias != nil {
		if bias.Size() != n {
			panic("tensor: matmul bias length mismatch")
		}
		if bias.dtype != out.dtype {
			panic("tensor: matmul bias dtype mismatch")
		}
		bias64, bias32 = bias.data, bias.data32
	}
	if !acc {
		out.Zero()
	}
	if m == 0 || n == 0 {
		return
	}
	flops := 2 * m * n * k
	if out.dtype == Float32 {
		if flops >= packMinFlops {
			gemmPacked32(kind, out.data32, a.data32, b.data32, bias32, m, k, n, ep)
		} else if shouldPar(m, 2*k*n) {
			ad, bd, od := a.data32, b.data32, out.data32
			ParallelFor(m, 2*k*n, func(lo, hi int) {
				gemmSmall32(kind, od, ad, bd, bias32, m, k, n, ep, lo, hi)
			})
		} else {
			gemmSmall32(kind, out.data32, a.data32, b.data32, bias32, m, k, n, ep, 0, m)
		}
		return
	}
	if flops >= packMinFlops {
		gemmPacked64(kind, out.data, a.data, b.data, bias64, m, k, n, ep)
		return
	}
	ad, bd, od := a.data, b.data, out.data
	par := shouldPar(m, 2*k*n)
	switch kind {
	case gemmNN:
		if par {
			ParallelFor(m, 2*k*n, func(lo, hi int) { gemmSmallNN64(od, ad, bd, bias64, k, n, ep, lo, hi) })
		} else {
			gemmSmallNN64(od, ad, bd, bias64, k, n, ep, 0, m)
		}
	case gemmNT:
		if par {
			ParallelFor(m, 2*k*n, func(lo, hi int) { gemmSmallNT64(od, ad, bd, bias64, k, n, ep, lo, hi) })
		} else {
			gemmSmallNT64(od, ad, bd, bias64, k, n, ep, 0, m)
		}
	case gemmTN:
		if par {
			ParallelFor(m, 2*k*n, func(lo, hi int) { gemmSmallTN64(od, ad, bd, bias64, m, k, n, ep, lo, hi) })
		} else {
			gemmSmallTN64(od, ad, bd, bias64, m, k, n, ep, 0, m)
		}
	}
}

// epilogueRowSeg64 applies bias+activation to out[jOff:jOff+len(seg)] of
// one row. A plain add (not FMA) keeps bias semantics identical to the
// former separate AddRowVector pass.
func epilogueRowSeg64(seg, bias []float64, jOff int, ep Epilogue) {
	if bias != nil {
		for x := range seg {
			seg[x] += bias[jOff+x]
		}
	}
	if ep != EpNone {
		for x, v := range seg {
			seg[x] = applyEp(v, ep)
		}
	}
}

// Small direct paths: no packing, no scratch, zero allocations — these
// keep Dense/GRU-sized calls on the fast path the workspace allocation
// gates pin.

func gemmSmallNN64(od, ad, bd, bias []float64, k, n int, ep Epilogue, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : i*n+n]
		arow := ad[i*k : i*k+k]
		for p := 0; p < k; p++ {
			axpyFMA(arow[p], bd[p*n:p*n+n], orow)
		}
		if bias != nil || ep != EpNone {
			epilogueRowSeg64(orow, bias, 0, ep)
		}
	}
}

func gemmSmallNT64(od, ad, bd, bias []float64, k, n int, ep Epilogue, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : i*n+n]
		arow := ad[i*k : i*k+k]
		for j := 0; j < n; j++ {
			acc := orow[j]
			brow := bd[j*k : j*k+k]
			for p, av := range arow {
				acc = math.FMA(av, brow[p], acc)
			}
			orow[j] = acc
		}
		if bias != nil || ep != EpNone {
			epilogueRowSeg64(orow, bias, 0, ep)
		}
	}
}

func gemmSmallTN64(od, ad, bd, bias []float64, m, k, n int, ep Epilogue, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : i*n+n]
		for p := 0; p < k; p++ {
			axpyFMA(ad[p*m+i], bd[p*n:p*n+n], orow)
		}
		if bias != nil || ep != EpNone {
			epilogueRowSeg64(orow, bias, 0, ep)
		}
	}
}

// gemmSmall32: scalar dots with float64 accumulation; the epilogue runs
// in float64 before the single rounding to float32.
func gemmSmall32(kind gemmKind, od, ad, bd []float32, bias []float32, m, k, n int, ep Epilogue, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			acc := float64(od[i*n+j])
			switch kind {
			case gemmNN:
				for p := 0; p < k; p++ {
					acc = math.FMA(float64(ad[i*k+p]), float64(bd[p*n+j]), acc)
				}
			case gemmNT:
				for p := 0; p < k; p++ {
					acc = math.FMA(float64(ad[i*k+p]), float64(bd[j*k+p]), acc)
				}
			case gemmTN:
				for p := 0; p < k; p++ {
					acc = math.FMA(float64(ad[p*m+i]), float64(bd[p*n+j]), acc)
				}
			}
			if bias != nil {
				acc += float64(bias[j])
			}
			od[i*n+j] = float32(applyEp(acc, ep))
		}
	}
}

// Packed blocked path: B strips packed once per (kc×nc) block into 8-wide
// panels, 4-row A panels packed per chunk, 4×8 register-tiled micro-kernel
// (AVX2+FMA on amd64). Edge tiles run the same kernel through a
// zero-padded stack tile whose out-of-range lanes are never stored.

func gemmPacked64(kind gemmKind, od, ad, bd, bias []float64, m, k, n int, ep Epilogue) {
	_, kcB, ncB := BlockSizes()
	kbMax := min(kcB, k)
	// Loop variables are copied into single-assignment locals (jc, nb,
	// pc, kb) before the worker closure captures them: capturing a
	// mutated variable would box it on the heap on every call, serial
	// path included.
	for jcIter := 0; jcIter < n; jcIter += ncB {
		jc, nb := jcIter, min(n-jcIter, ncB)
		panels := (nb + 7) / 8
		bpP := getScratch(panels * kbMax * 8)
		for pcIter := 0; pcIter < k; pcIter += kcB {
			pc, kb := pcIter, min(k-pcIter, kcB)
			bp := (*bpP)[:panels*kb*8]
			if kind == gemmNT {
				packBCols64(bp, bd, k, pc, kb, jc, nb)
			} else {
				packBRows64(bp, bd, n, pc, kb, jc, nb)
			}
			lastK := pc+kb == k
			rowBlocks := (m + 3) / 4
			cost := 8 * kb * nb
			if shouldPar(rowBlocks, cost) {
				ParallelFor(rowBlocks, cost, func(lo, hi int) {
					gemmPackedRows64(kind, od, ad, bp, bias, m, k, n, pc, kb, jc, nb, lo, hi, lastK, ep)
				})
			} else {
				gemmPackedRows64(kind, od, ad, bp, bias, m, k, n, pc, kb, jc, nb, 0, rowBlocks, lastK, ep)
			}
		}
		putScratch(bpP)
	}
}

func gemmPackedRows64(kind gemmKind, od, ad, bp, bias []float64, m, k, n, pc, kb, jc, nb, lo, hi int, lastK bool, ep Epilogue) {
	apP := getScratch(kb * 4)
	ap := *apP
	panels := (nb + 7) / 8
	var tile [32]float64
	for ib := lo; ib < hi; ib++ {
		i0 := ib * 4
		mb := m - i0
		if mb > 4 {
			mb = 4
		}
		if kind == gemmTN {
			packACols64(ap, ad, m, i0, mb, pc, kb)
		} else {
			packARows64(ap, ad, k, i0, mb, pc, kb)
		}
		for j8 := 0; j8 < panels; j8++ {
			jj := jc + j8*8
			w := nb - j8*8
			if w > 8 {
				w = 8
			}
			bpanel := bp[j8*kb*8 : (j8+1)*kb*8]
			if mb == 4 && w == 8 {
				gemm4x8(kb, ap, bpanel, od[i0*n+jj:], n)
				continue
			}
			for r := 0; r < mb; r++ {
				copy(tile[r*8:r*8+w], od[(i0+r)*n+jj:(i0+r)*n+jj+w])
				for x := w; x < 8; x++ {
					tile[r*8+x] = 0
				}
			}
			for r := mb * 8; r < 32; r++ {
				tile[r] = 0
			}
			gemm4x8(kb, ap, bpanel, tile[:], 8)
			for r := 0; r < mb; r++ {
				copy(od[(i0+r)*n+jj:(i0+r)*n+jj+w], tile[r*8:r*8+w])
			}
		}
		if lastK && (bias != nil || ep != EpNone) {
			for r := 0; r < mb; r++ {
				epilogueRowSeg64(od[(i0+r)*n+jc:(i0+r)*n+jc+nb], bias, jc, ep)
			}
		}
	}
	putScratch(apP)
}

// gemmPacked32 accumulates each nc strip into a pooled float64 buffer —
// intermediate kc blocks never round to float32, preserving the
// "float64 accumulation over the full K" contract — then applies the
// epilogue and rounds once on store.
func gemmPacked32(kind gemmKind, od, ad, bd []float32, bias []float32, m, k, n int, ep Epilogue) {
	_, kcB, ncB := BlockSizes()
	kbMax := min(kcB, k)
	for jcIter := 0; jcIter < n; jcIter += ncB {
		jc, nb := jcIter, min(n-jcIter, ncB)
		panels := (nb + 7) / 8
		csP := getScratch(m * nb)
		cs := *csP
		for i := 0; i < m; i++ {
			src := od[i*n+jc : i*n+jc+nb]
			dst := cs[i*nb : i*nb+nb]
			for j, v := range src {
				dst[j] = float64(v)
			}
		}
		bpP := getScratch(panels * kbMax * 8)
		for pc := 0; pc < k; pc += kcB {
			kb := k - pc
			if kb > kcB {
				kb = kcB
			}
			bp := (*bpP)[:panels*kb*8]
			if kind == gemmNT {
				packBCols32(bp, bd, k, pc, kb, jc, nb)
			} else {
				packBRows32(bp, bd, n, pc, kb, jc, nb)
			}
			rowBlocks := (m + 3) / 4
			cost := 8 * kb * nb
			if shouldPar(rowBlocks, cost) {
				ParallelFor(rowBlocks, cost, func(lo, hi int) {
					gemmPackedRows32(kind, cs, ad, bp, m, k, nb, pc, kb, lo, hi)
				})
			} else {
				gemmPackedRows32(kind, cs, ad, bp, m, k, nb, pc, kb, 0, rowBlocks)
			}
		}
		putScratch(bpP)
		for i := 0; i < m; i++ {
			src := cs[i*nb : i*nb+nb]
			dst := od[i*n+jc : i*n+jc+nb]
			if bias != nil {
				for j, v := range src {
					dst[j] = float32(applyEp(v+float64(bias[jc+j]), ep))
				}
			} else {
				for j, v := range src {
					dst[j] = float32(applyEp(v, ep))
				}
			}
		}
		putScratch(csP)
	}
}

// gemmPackedRows32 runs the micro-kernel over the float64 strip cs
// (row stride nb, column origin 0), packing A panels from float32.
func gemmPackedRows32(kind gemmKind, cs []float64, ad []float32, bp []float64, m, k, nb, pc, kb, lo, hi int) {
	apP := getScratch(kb * 4)
	ap := *apP
	panels := (nb + 7) / 8
	var tile [32]float64
	for ib := lo; ib < hi; ib++ {
		i0 := ib * 4
		mb := m - i0
		if mb > 4 {
			mb = 4
		}
		if kind == gemmTN {
			packACols32(ap, ad, m, i0, mb, pc, kb)
		} else {
			packARows32(ap, ad, k, i0, mb, pc, kb)
		}
		for j8 := 0; j8 < panels; j8++ {
			jj := j8 * 8
			w := nb - jj
			if w > 8 {
				w = 8
			}
			bpanel := bp[j8*kb*8 : (j8+1)*kb*8]
			if mb == 4 && w == 8 {
				gemm4x8(kb, ap, bpanel, cs[i0*nb+jj:], nb)
				continue
			}
			for r := 0; r < mb; r++ {
				copy(tile[r*8:r*8+w], cs[(i0+r)*nb+jj:(i0+r)*nb+jj+w])
				for x := w; x < 8; x++ {
					tile[r*8+x] = 0
				}
			}
			for r := mb * 8; r < 32; r++ {
				tile[r] = 0
			}
			gemm4x8(kb, ap, bpanel, tile[:], 8)
			for r := 0; r < mb; r++ {
				copy(cs[(i0+r)*nb+jj:(i0+r)*nb+jj+w], tile[r*8:r*8+w])
			}
		}
	}
	putScratch(apP)
}

// Reference kernels: the floating-point contract stated literally — one
// scalar FMA chain per element, ascending p, seeded from the prior out
// value. Every optimized path must match these bitwise (kernel_test.go).

func refGemm(kind gemmKind, out, a, b, bias *Tensor, ep Epilogue, acc bool) {
	var m, k, n int
	switch kind {
	case gemmNN:
		m, k, n = a.shape[0], a.shape[1], b.shape[1]
	case gemmNT:
		m, k, n = a.shape[0], a.shape[1], b.shape[0]
	case gemmTN:
		k, m, n = a.shape[0], a.shape[1], b.shape[1]
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic("tensor: matmul output shape mismatch")
	}
	if !acc {
		out.Zero()
	}
	if out.dtype == Float32 {
		od, ad, bd := out.data32, a.data32, b.data32
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				acc := float64(od[i*n+j])
				switch kind {
				case gemmNN:
					for p := 0; p < k; p++ {
						acc = math.FMA(float64(ad[i*k+p]), float64(bd[p*n+j]), acc)
					}
				case gemmNT:
					for p := 0; p < k; p++ {
						acc = math.FMA(float64(ad[i*k+p]), float64(bd[j*k+p]), acc)
					}
				case gemmTN:
					for p := 0; p < k; p++ {
						acc = math.FMA(float64(ad[p*m+i]), float64(bd[p*n+j]), acc)
					}
				}
				if bias != nil {
					acc += float64(bias.data32[j])
				}
				od[i*n+j] = float32(applyEp(acc, ep))
			}
		}
		return
	}
	od, ad, bd := out.data, a.data, b.data
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := od[i*n+j]
			switch kind {
			case gemmNN:
				for p := 0; p < k; p++ {
					acc = math.FMA(ad[i*k+p], bd[p*n+j], acc)
				}
			case gemmNT:
				for p := 0; p < k; p++ {
					acc = math.FMA(ad[i*k+p], bd[j*k+p], acc)
				}
			case gemmTN:
				for p := 0; p < k; p++ {
					acc = math.FMA(ad[p*m+i], bd[p*n+j], acc)
				}
			}
			if bias != nil {
				acc += bias.data[j]
			}
			od[i*n+j] = applyEp(acc, ep)
		}
	}
}

// RefMatMulInto is the naive reference for MatMulInto (out = a·b). It is
// kept for bitwise cross-checks and benchmark baselines, not speed.
func RefMatMulInto(out, a, b *Tensor) *Tensor {
	refGemm(gemmNN, out, a, b, nil, EpNone, false)
	return out
}

// RefMatMulTInto is the naive reference for MatMulTInto (out = a·bᵀ).
func RefMatMulTInto(out, a, b *Tensor) *Tensor {
	refGemm(gemmNT, out, a, b, nil, EpNone, false)
	return out
}

// RefTMatMulInto is the naive reference for TMatMulInto (out = aᵀ·b).
func RefTMatMulInto(out, a, b *Tensor) *Tensor {
	refGemm(gemmTN, out, a, b, nil, EpNone, false)
	return out
}
