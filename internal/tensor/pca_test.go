package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// lowRankData builds (n, d) data lying near a k-dim subspace.
func lowRankData(rng *rand.Rand, n, d, k int, noise float64) *Tensor {
	basis := make([][]float64, k)
	for i := range basis {
		basis[i] = make([]float64, d)
		for j := range basis[i] {
			basis[i][j] = rng.NormFloat64()
		}
	}
	x := New(n, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for b := 0; b < k; b++ {
			w := rng.NormFloat64() * float64(k-b) // decreasing variance
			for j := 0; j < d; j++ {
				row[j] += w * basis[b][j]
			}
		}
		for j := 0; j < d; j++ {
			row[j] += rng.NormFloat64() * noise
		}
	}
	return x
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankData(rng, 80, 6, 3, 0.1)
	comps, _ := PCA(x, 3, 60, rng)
	for i := 0; i < 3; i++ {
		ri := comps.Row(i)
		norm := 0.0
		for _, v := range ri {
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-6 {
			t.Fatalf("component %d not unit: %f", i, norm)
		}
		for j := i + 1; j < 3; j++ {
			rj := comps.Row(j)
			dot := 0.0
			for p := range ri {
				dot += ri[p] * rj[p]
			}
			if math.Abs(dot) > 1e-4 {
				t.Fatalf("components %d,%d not orthogonal: %f", i, j, dot)
			}
		}
	}
}

func TestPCAReconstructionBeatsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := lowRankData(rng, 100, 8, 2, 0.05)
	comps, means := PCA(x, 2, 60, rng)
	recon := PCAReconstruct(PCAProject(x, comps, means), comps, means)

	mse := func(a, b *Tensor) float64 {
		d := Sub(a, b)
		return Dot(d, d) / float64(d.Size())
	}
	meanOnly := New(x.Shape()...)
	for i := 0; i < x.Dim(0); i++ {
		copy(meanOnly.Row(i), means.Data())
	}
	ePCA := mse(recon, x)
	eMean := mse(meanOnly, x)
	if ePCA >= eMean/5 {
		t.Fatalf("PCA(2) on rank-2 data should be far better than mean: %f vs %f", ePCA, eMean)
	}
}

func TestPCAProjectRoundTripExactOnExactRank(t *testing.T) {
	// Data exactly in a 1-D subspace: PCA(1) reconstructs exactly.
	x := New(10, 3)
	dir := []float64{1, 2, -1}
	for i := 0; i < 10; i++ {
		w := float64(i) - 4.5
		for j := 0; j < 3; j++ {
			x.Set(w*dir[j], i, j)
		}
	}
	rng := rand.New(rand.NewSource(3))
	comps, means := PCA(x, 1, 80, rng)
	recon := PCAReconstruct(PCAProject(x, comps, means), comps, means)
	if !AllClose(recon, x, 1e-8) {
		t.Fatal("PCA(1) must reconstruct exactly rank-1 data")
	}
}

func TestPCAPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, f := range []func(){
		func() { PCA(New(3), 1, 10, rng) },    // not 2-D
		func() { PCA(New(5, 3), 0, 10, rng) }, // k < 1
		func() { PCA(New(5, 3), 4, 10, rng) }, // k > d
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRPCASeparatesAnomalies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Rank-2 background spectra + a few rows with strong sparse spikes.
	n, d := 120, 8
	x := lowRankData(rng, n, d, 2, 0.05)
	anomalous := map[int]bool{7: true, 40: true, 88: true}
	for i := range anomalous {
		row := x.Row(i)
		row[rng.Intn(d)] += 6
		row[rng.Intn(d)] -= 5
	}
	res := RPCA(x, RPCAConfig{Rank: 2, Seed: 10})
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
	// L + S must reconstruct X reasonably.
	recon := Add(res.L, res.S)
	if !AllClose(recon, x, 0.5) {
		t.Fatal("L + S far from X")
	}
	// The three anomalous rows must carry the top-3 anomaly scores.
	scores := res.AnomalyScores()
	type sc struct {
		i int
		v float64
	}
	ranked := make([]sc, n)
	for i, v := range scores {
		ranked[i] = sc{i, v}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].v > ranked[b].v })
	for k := 0; k < 3; k++ {
		if !anomalous[ranked[k].i] {
			t.Fatalf("rank-%d score at row %d is not an implanted anomaly (scores %v...)", k, ranked[k].i, ranked[:4])
		}
	}
}

func TestRPCAPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RPCA(New(3), RPCAConfig{Rank: 1}) },
		func() { RPCA(New(4, 3), RPCAConfig{Rank: 0}) },
		func() { RPCA(New(4, 3), RPCAConfig{Rank: 9}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMedianAbs(t *testing.T) {
	if m := medianAbs([]float64{-3, 1, 2}); m != 2 {
		t.Fatalf("medianAbs: %f", m)
	}
	if medianAbs(nil) != 0 {
		t.Fatal("empty median must be 0")
	}
}
