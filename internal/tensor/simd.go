package tensor

import "math"

// Portable fallbacks for the SIMD kernels. math.FMA is exactly rounded
// (the software path included), so these produce bit-identical results
// to the AVX2 assembly on any architecture — the property the
// cross-check tests pin.

func gemm4x8Go(k int, ap, bp, c []float64, ldc int) {
	for r := 0; r < 4; r++ {
		crow := c[r*ldc : r*ldc+8]
		for j := 0; j < 8; j++ {
			acc := crow[j]
			for p := 0; p < k; p++ {
				acc = math.FMA(ap[p*4+r], bp[p*8+j], acc)
			}
			crow[j] = acc
		}
	}
}

func axpyFMAGo(alpha float64, x, y []float64) {
	if len(x) < len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i := range y {
		y[i] = math.FMA(alpha, x[i], y[i])
	}
}
