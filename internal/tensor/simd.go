package tensor

import "math"

// Portable fallbacks for the SIMD kernels. math.FMA is exactly rounded
// (the software path included), so these produce bit-identical results
// to the AVX2 assembly on any architecture — the property the
// cross-check tests pin.

func gemm4x8Go(k int, ap, bp, c []float64, ldc int) {
	for r := 0; r < 4; r++ {
		crow := c[r*ldc : r*ldc+8]
		for j := 0; j < 8; j++ {
			acc := crow[j]
			for p := 0; p < k; p++ {
				acc = math.FMA(ap[p*4+r], bp[p*8+j], acc)
			}
			crow[j] = acc
		}
	}
}

func axpyFMAGo(alpha float64, x, y []float64) {
	if len(x) < len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i := range y {
		y[i] = math.FMA(alpha, x[i], y[i])
	}
}

// Scalar references for the vector-op layer (vec.go). Unlike the FMA
// kernels above, these are plain one-rounding-per-operation loops: the
// AVX2 versions execute the same IEEE operation per element, so scalar
// and vector results are bit-identical by construction (including NaN
// propagation and signed zeros — see the VMAXPD/VCMPPD notes in
// vec_amd64.s).

func vecAddGo(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func vecMulGo(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// vecMaxGo is the max-combine update: b wins only on a strict >, so NaN
// and equal-magnitude ties keep a — the semantics mpi.OpMax has always
// had (`if src > dst { dst = src }`).
func vecMaxGo(dst, a, b []float64) {
	for i := range dst {
		av, bv := a[i], b[i]
		if bv > av {
			dst[i] = bv
		} else {
			dst[i] = av
		}
	}
}

func vecMinGo(dst, a, b []float64) {
	for i := range dst {
		av, bv := a[i], b[i]
		if bv < av {
			dst[i] = bv
		} else {
			dst[i] = av
		}
	}
}

func vecScaleGo(dst, a []float64, s float64) {
	for i := range dst {
		dst[i] = a[i] * s
	}
}

// vecAxpyPlainGo is y += alpha*x with two roundings (multiply, then
// add) — deliberately NOT math.FMA, so it matches the historical scalar
// Tensor.Axpy loop bit for bit.
func vecAxpyPlainGo(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// vecSumGo fixes the 4-lane accumulation order shared with vecSumAVX:
// lane j accumulates x[j], x[j+4], …; lanes fold as (l0+l2)+(l1+l3);
// the <4 remainder folds into the total last.
func vecSumGo(x []float64) float64 {
	var l0, l1, l2, l3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		l0 += x[i]
		l1 += x[i+1]
		l2 += x[i+2]
		l3 += x[i+3]
	}
	s := (l0 + l2) + (l1 + l3)
	for ; i < len(x); i++ {
		s += x[i]
	}
	return s
}

// vecReLUGo keeps the scalar rectifier's exact branch: v <= 0 writes a
// literal +0 (so -0 maps to +0), anything else — including NaN — passes
// through.
func vecReLUGo(dst, a []float64) {
	for i, v := range a {
		if v <= 0 {
			dst[i] = 0
		} else {
			dst[i] = v
		}
	}
}
