package tensor

import (
	"math"
	"math/rand"
)

// PCA computes the top-k principal components of row-major data (N, D)
// by power iteration with Gram-Schmidt deflation on the covariance
// operator — no full eigendecomposition needed. It returns the component
// matrix (k, D, unit rows) and the column means. It is the linear
// baseline against which the RS-compression autoencoder (Haut et al.,
// paper ref [7]) is compared.
func PCA(x *Tensor, k, iters int, rng *rand.Rand) (components *Tensor, means *Tensor) {
	if x.NDim() != 2 {
		panic("tensor: PCA requires (N, D) data")
	}
	n, d := x.Dim(0), x.Dim(1)
	if k < 1 || k > d {
		panic("tensor: PCA component count out of range")
	}
	means = MeanAxis0(x)
	centered := x.Clone()
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= means.Data()[j]
		}
	}

	components = New(k, d)
	for c := 0; c < k; c++ {
		v := Randn(rng, 1, d)
		normalize(v.Data())
		for it := 0; it < iters; it++ {
			// w = Covᵀ·v computed as Xᵀ·(X·v) without materializing Cov.
			xv := MatVec(centered, v)
			w := make([]float64, d)
			for i := 0; i < n; i++ {
				row := centered.Row(i)
				s := xv.Data()[i]
				for j := range row {
					w[j] += s * row[j]
				}
			}
			// Deflate against previously found components.
			for p := 0; p < c; p++ {
				prev := components.Row(p)
				dot := 0.0
				for j := range w {
					dot += w[j] * prev[j]
				}
				for j := range w {
					w[j] -= dot * prev[j]
				}
			}
			normalize(w)
			copy(v.Data(), w)
		}
		copy(components.Row(c), v.Data())
	}
	return components, means
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		v[0] = 1
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
}

// PCAProject encodes data (N, D) into (N, k) scores given components and
// means from PCA.
func PCAProject(x, components, means *Tensor) *Tensor {
	n, d := x.Dim(0), x.Dim(1)
	k := components.Dim(0)
	out := New(n, k)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for c := 0; c < k; c++ {
			comp := components.Row(c)
			s := 0.0
			for j := 0; j < d; j++ {
				s += (row[j] - means.Data()[j]) * comp[j]
			}
			out.Set(s, i, c)
		}
	}
	return out
}

// PCAReconstruct decodes scores (N, k) back to (N, D).
func PCAReconstruct(scores, components, means *Tensor) *Tensor {
	n, k := scores.Dim(0), scores.Dim(1)
	d := components.Dim(1)
	out := New(n, d)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		copy(row, means.Data())
		for c := 0; c < k; c++ {
			s := scores.At(i, c)
			comp := components.Row(c)
			for j := 0; j < d; j++ {
				row[j] += s * comp[j]
			}
		}
	}
	return out
}
