package tensor

import "math"

// The shared SIMD vector-op layer: flat []float64 kernels used by the
// tensor elementwise ops and, through mpi.ReduceOp, by every collective's
// combine phase. Each op has one slice-level entry point that dispatches
// to AVX2 assembly when the host supports it (useAVX, simd_amd64.go) and
// to a pure-Go loop otherwise, parallelized through the ParallelFor
// runtime above the grain threshold.
//
// Bitwise contract: vectorization never changes results. The elementwise
// ops perform exactly the per-index operations of their scalar loops (one
// IEEE add/mul/compare per element, in the same operand order), so the
// assembly, the Go fallback, and any worker count produce bit-identical
// outputs — the property the mpi collectives' equivalence guarantees
// (PR 4/6) rest on, pinned by the property tests in vec_test.go. VecSum
// is the one reduction: it fixes a 4-lane accumulation order shared by
// the assembly and the Go fallback, and stays serial so its result is
// independent of the worker count.
//
// dst may alias an input exactly (dst == a or dst == b); partial overlap
// is undefined. Inputs may be longer than dst; extra elements are
// ignored, which lets mpi combine a received chunk into a window of the
// accumulator without reslicing.

// vecCost is the approximate scalar-op cost per index of the arithmetic
// vector ops (shared with the ewRange elementwise kernels).
const vecCost = 1

// checkVec2 panics unless a and b cover dst, returning them clipped to
// dst's length.
func checkVec2(op string, dst, a, b []float64) ([]float64, []float64) {
	if len(a) < len(dst) || len(b) < len(dst) {
		panic("tensor: " + op + " input shorter than dst")
	}
	return a[:len(dst)], b[:len(dst)]
}

// VecAddInto sets dst[i] = a[i] + b[i]. dst may alias a or b.
func VecAddInto(dst, a, b []float64) {
	a, b = checkVec2("VecAddInto", dst, a, b)
	n := len(dst)
	if shouldPar(n, vecCost) {
		ParallelFor(n, vecCost, func(lo, hi int) { vecAdd(dst[lo:hi], a[lo:hi], b[lo:hi]) })
		return
	}
	vecAdd(dst, a, b)
}

// VecMulInto sets dst[i] = a[i] * b[i]. dst may alias a or b.
func VecMulInto(dst, a, b []float64) {
	a, b = checkVec2("VecMulInto", dst, a, b)
	n := len(dst)
	if shouldPar(n, vecCost) {
		ParallelFor(n, vecCost, func(lo, hi int) { vecMul(dst[lo:hi], a[lo:hi], b[lo:hi]) })
		return
	}
	vecMul(dst, a, b)
}

// VecMaxInto sets dst[i] = b[i] if b[i] > a[i], else a[i] — exactly the
// `if src > dst { dst = src }` update of a max-reduction combine, so NaNs
// and signed zeros in a win ties. dst may alias a or b.
func VecMaxInto(dst, a, b []float64) {
	a, b = checkVec2("VecMaxInto", dst, a, b)
	n := len(dst)
	if shouldPar(n, vecCost) {
		ParallelFor(n, vecCost, func(lo, hi int) { vecMax(dst[lo:hi], a[lo:hi], b[lo:hi]) })
		return
	}
	vecMax(dst, a, b)
}

// VecMinInto sets dst[i] = b[i] if b[i] < a[i], else a[i] (the min-combine
// mirror of VecMaxInto). dst may alias a or b.
func VecMinInto(dst, a, b []float64) {
	a, b = checkVec2("VecMinInto", dst, a, b)
	n := len(dst)
	if shouldPar(n, vecCost) {
		ParallelFor(n, vecCost, func(lo, hi int) { vecMin(dst[lo:hi], a[lo:hi], b[lo:hi]) })
		return
	}
	vecMin(dst, a, b)
}

// VecScaleInto sets dst[i] = a[i] * s. dst may alias a.
func VecScaleInto(dst, a []float64, s float64) {
	if len(a) < len(dst) {
		panic("tensor: VecScaleInto input shorter than dst")
	}
	a = a[:len(dst)]
	n := len(dst)
	if shouldPar(n, vecCost) {
		ParallelFor(n, vecCost, func(lo, hi int) { vecScale(dst[lo:hi], a[lo:hi], s) })
		return
	}
	vecScale(dst, a, s)
}

// AxpyInto performs dst[i] += alpha * x[i] with a separately rounded
// multiply and add (NOT fused), matching the scalar `dst += alpha*x` loop
// bit for bit. The matmul kernels use the exactly-rounded FMA chain
// instead; this op exists for the optimizer/gradient update idiom.
func AxpyInto(dst []float64, alpha float64, x []float64) {
	if len(x) < len(dst) {
		panic("tensor: AxpyInto input shorter than dst")
	}
	x = x[:len(dst)]
	n := len(dst)
	if shouldPar(n, vecCost*2) {
		ParallelFor(n, vecCost*2, func(lo, hi int) { vecAxpyPlain(alpha, x[lo:hi], dst[lo:hi]) })
		return
	}
	vecAxpyPlain(alpha, x, dst)
}

// VecSum returns the sum of x under a fixed 4-lane accumulation order
// (lane j takes x[j], x[j+4], …; lanes fold as (l0+l2)+(l1+l3); the
// remainder folds in last). The assembly and Go paths implement the same
// order, so the result is bit-identical everywhere — and the op stays
// serial, so it is also independent of the configured worker count.
func VecSum(x []float64) float64 {
	return vecSum(x)
}

// vecSigmoid and vecTanh are the direct-loop activation kernels: the same
// per-element expressions the ApplyInto closures compute, without the
// per-element indirect call. math.Exp/math.Tanh are scalar (no bitwise
// vector equivalent exists), so these win on call overhead and
// parallelization, not instruction width.
func vecSigmoid(dst, a []float64) {
	for i, v := range a {
		dst[i] = 1 / (1 + math.Exp(-v))
	}
}

func vecTanh(dst, a []float64) {
	for i, v := range a {
		dst[i] = math.Tanh(v)
	}
}

// activationCost mirrors ApplyInto's parallelization threshold for
// function-call-heavy elementwise loops.
const activationCost = 16

// SigmoidInto sets out = 1/(1+exp(-a)) elementwise, bit-identical to
// ApplyInto with the sigmoid closure. out may alias a. Float32 tensors
// take the widening ApplyInto path unchanged.
func SigmoidInto(out, a *Tensor) *Tensor {
	checkSame("SigmoidInto", out, a)
	if out.dtype != Float64 {
		return ApplyInto(out, a, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	}
	od, ad := out.data, a.data
	if shouldPar(len(od), activationCost) {
		ParallelFor(len(od), activationCost, func(lo, hi int) { vecSigmoid(od[lo:hi], ad[lo:hi]) })
	} else {
		vecSigmoid(od, ad)
	}
	return out
}

// TanhInto sets out = tanh(a) elementwise, bit-identical to ApplyInto
// with math.Tanh. out may alias a.
func TanhInto(out, a *Tensor) *Tensor {
	checkSame("TanhInto", out, a)
	if out.dtype != Float64 {
		return ApplyInto(out, a, math.Tanh)
	}
	od, ad := out.data, a.data
	if shouldPar(len(od), activationCost) {
		ParallelFor(len(od), activationCost, func(lo, hi int) { vecTanh(od[lo:hi], ad[lo:hi]) })
	} else {
		vecTanh(od, ad)
	}
	return out
}

// ReLUInto sets out[i] = a[i] unless a[i] <= 0, in which case +0 — the
// exact branch semantics of the scalar rectifier (NaN passes through,
// -0 maps to +0), vectorized as a compare+mask. out may alias a.
func ReLUInto(out, a *Tensor) *Tensor {
	checkSame("ReLUInto", out, a)
	if out.dtype != Float64 {
		od, ad := out.data32, a.data32
		for i, v := range ad {
			if v <= 0 {
				od[i] = 0
			} else {
				od[i] = v
			}
		}
		return out
	}
	od, ad := out.data, a.data
	if shouldPar(len(od), vecCost) {
		ParallelFor(len(od), vecCost, func(lo, hi int) { vecReLU(od[lo:hi], ad[lo:hi]) })
	} else {
		vecReLU(od, ad)
	}
	return out
}
