package tensor

import (
	"fmt"
	"math"
)

// ConvDims computes output spatial size for a convolution/pooling window.
func ConvDims(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers an image batch of shape (N, C, H, W) to a matrix of shape
// (N*OH*OW, C*KH*KW) so that convolution becomes a single MatMul against a
// (C*KH*KW, OutC) filter matrix. Out-of-bounds (padding) samples are zero.
func Im2Col(img *Tensor, kh, kw, stride, padH, padW int) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: Im2Col requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, kh, stride, padH)
	ow := ConvDims(w, kw, stride, padW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col degenerate output %dx%d", oh, ow))
	}
	cols := New(n*oh*ow, c*kh*kw)
	Im2ColInto(cols, img, kh, kw, stride, padH, padW)
	return cols
}

// Im2ColInto lowers img into the caller-provided column matrix cols, which
// must have shape (N*OH*OW, C*KH*KW) and is fully overwritten (padding
// cells included).
func Im2ColInto(cols, img *Tensor, kh, kw, stride, padH, padW int) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: Im2ColInto requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, kh, stride, padH)
	ow := ConvDims(w, kw, stride, padW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColInto degenerate output %dx%d", oh, ow))
	}
	if len(cols.shape) != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Im2ColInto output shape %v, want (%d,%d)", cols.shape, n*oh*ow, c*kh*kw))
	}
	rows := n * oh * ow
	cost := 2 * c * kh * kw
	if shouldPar(rows, cost) {
		cd, id := cols.data, img.data
		ParallelFor(rows, cost, func(lo, hi int) {
			im2colRows(cd, id, c, h, w, oh, ow, kh, kw, stride, padH, padW, lo, hi)
		})
	} else {
		im2colRows(cols.data, img.data, c, h, w, oh, ow, kh, kw, stride, padH, padW, 0, rows)
	}
	return cols
}

// im2colRows lowers column-matrix rows [lo,hi). Each row is fully
// overwritten (padding cells written as explicit zeros), so rows are
// independent and a recycled buffer matches a fresh one exactly.
func im2colRows(cols, img []float64, c, h, w, oh, ow, kh, kw, stride, padH, padW, lo, hi int) {
	for colRow := lo; colRow < hi; colRow++ {
		b := colRow / (oh * ow)
		rem := colRow % (oh * ow)
		iy0 := (rem/ow)*stride - padH
		ix0 := (rem%ow)*stride - padW
		dst := cols[colRow*c*kh*kw : (colRow+1)*c*kh*kw]
		di := 0
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for ky := 0; ky < kh; ky++ {
				iy := iy0 + ky
				if iy < 0 || iy >= h {
					for kx := 0; kx < kw; kx++ {
						dst[di] = 0
						di++
					}
					continue
				}
				rowBase := base + iy*w
				for kx := 0; kx < kw; kx++ {
					ix := ix0 + kx
					if ix >= 0 && ix < w {
						dst[di] = img[rowBase+ix]
					} else {
						dst[di] = 0
					}
					di++
				}
			}
		}
	}
}

// Col2Im scatters a column matrix (as produced by Im2Col) back into an
// image batch of shape (N, C, H, W), accumulating overlapping windows.
// It is the adjoint of Im2Col and is used in the convolution backward pass.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, padH, padW int) *Tensor {
	img := New(n, c, h, w)
	Col2ImInto(img, cols, kh, kw, stride, padH, padW)
	return img
}

// Col2ImInto scatters cols into the caller-provided image batch img of
// shape (N, C, H, W), overwriting it (img is zeroed, then overlapping
// windows accumulate).
func Col2ImInto(img, cols *Tensor, kh, kw, stride, padH, padW int) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: Col2ImInto requires (N,C,H,W) output")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, kh, stride, padH)
	ow := ConvDims(w, kw, stride, padW)
	if cols.shape[0] != n*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with (%d,%d,%d,%d) k=%dx%d", cols.shape, n, c, h, w, kh, kw))
	}
	// Overlapping windows accumulate, but only within one batch image —
	// so the scatter parallelizes over the batch axis, each worker owning
	// a disjoint (C,H,W) slab that it zeroes itself.
	cost := 2 * oh * ow * c * kh * kw
	if shouldPar(n, cost) {
		id, cd := img.data, cols.data
		ParallelFor(n, cost, func(lo, hi int) {
			col2imBatches(id, cd, c, h, w, oh, ow, kh, kw, stride, padH, padW, lo, hi)
		})
	} else {
		col2imBatches(img.data, cols.data, c, h, w, oh, ow, kh, kw, stride, padH, padW, 0, n)
	}
	return img
}

// col2imBatches scatters cols back into batch images [lo,hi).
func col2imBatches(img, cols []float64, c, h, w, oh, ow, kh, kw, stride, padH, padW, lo, hi int) {
	for b := lo; b < hi; b++ {
		slab := img[b*c*h*w : (b+1)*c*h*w]
		for i := range slab {
			slab[i] = 0
		}
		colRow := b * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - padH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - padW
				src := cols[colRow*c*kh*kw : (colRow+1)*c*kh*kw]
				si := 0
				for ch := 0; ch < c; ch++ {
					base := ((b*c + ch) * h) * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							si += kw
							continue
						}
						rowBase := base + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								img[rowBase+ix] += src[si]
							}
							si++
						}
					}
				}
				colRow++
			}
		}
	}
}

// ScatterNCHWInto rearranges a (N·OH·OW, OutC) matmul-layout matrix into
// channel-major images out (N, OutC, OH, OW), parallel over the batch.
func ScatterNCHWInto(out, flat *Tensor) *Tensor {
	if len(out.shape) != 4 {
		panic("tensor: ScatterNCHWInto requires (N,C,OH,OW) output")
	}
	n, oc, oh, ow := out.shape[0], out.shape[1], out.shape[2], out.shape[3]
	if flat.Size() != n*oc*oh*ow {
		panic("tensor: ScatterNCHWInto size mismatch")
	}
	cost := 2 * oc * oh * ow
	if shouldPar(n, cost) {
		od, fd := out.data, flat.data
		ParallelFor(n, cost, func(lo, hi int) { scatterNCHW(od, fd, oc, oh, ow, lo, hi) })
	} else {
		scatterNCHW(out.data, flat.data, oc, oh, ow, 0, n)
	}
	return out
}

func scatterNCHW(out, flat []float64, oc, oh, ow, lo, hi int) {
	for b := lo; b < hi; b++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				row := ((b*oh+y)*ow + x) * oc
				for ch := 0; ch < oc; ch++ {
					out[((b*oc+ch)*oh+y)*ow+x] = flat[row+ch]
				}
			}
		}
	}
}

// GatherNCHWInto is the inverse of ScatterNCHWInto: it collects a
// channel-major image batch img (N, C, OH, OW) into the matmul-layout
// matrix flat (N·OH·OW, C), parallel over the batch.
func GatherNCHWInto(flat, img *Tensor) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: GatherNCHWInto requires (N,C,OH,OW) input")
	}
	n, oc, oh, ow := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	if flat.Size() != n*oc*oh*ow {
		panic("tensor: GatherNCHWInto size mismatch")
	}
	cost := 2 * oc * oh * ow
	if shouldPar(n, cost) {
		fd, id := flat.data, img.data
		ParallelFor(n, cost, func(lo, hi int) { gatherNCHW(fd, id, oc, oh, ow, lo, hi) })
	} else {
		gatherNCHW(flat.data, img.data, oc, oh, ow, 0, n)
	}
	return flat
}

func gatherNCHW(flat, img []float64, oc, oh, ow, lo, hi int) {
	for b := lo; b < hi; b++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				row := ((b*oh+y)*ow + x) * oc
				for ch := 0; ch < oc; ch++ {
					flat[row+ch] = img[((b*oc+ch)*oh+y)*ow+x]
				}
			}
		}
	}
}

// Conv2DBiasInto computes a fused convolution-plus-bias forward pass:
// out = conv(img, w) + bias, writing channel-major (N, OutC, OH, OW)
// images. img is (N, C, H, W), w is the (C·KH·KW, OutC) filter matrix
// (same layout the im2col path multiplies against), bias has length OutC.
//
// For stride-1 convolutions it runs an im2col-free direct kernel —
// per-(batch, out-channel) output planes accumulate FMA row updates in
// ascending (c, ky, kx) order, bitwise equal to RefConv2DInto — and
// touches no scratch beyond the output. Other strides fall back to
// im2col + fused matmul through ws (nil ws allocates).
func Conv2DBiasInto(ws *Workspace, out, img, w, bias *Tensor, kh, kw, stride, padH, padW int) *Tensor {
	if len(img.shape) != 4 || len(out.shape) != 4 {
		panic("tensor: Conv2DBiasInto requires (N,C,H,W) tensors")
	}
	if img.dtype != Float64 || out.dtype != Float64 {
		panic("tensor: Conv2DBiasInto requires float64 tensors")
	}
	n, c, h, wd := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, kh, stride, padH)
	ow := ConvDims(wd, kw, stride, padW)
	outC := w.shape[1]
	if w.shape[0] != c*kh*kw {
		panic("tensor: Conv2DBiasInto filter shape mismatch")
	}
	if out.shape[0] != n || out.shape[1] != outC || out.shape[2] != oh || out.shape[3] != ow {
		panic("tensor: Conv2DBiasInto output shape mismatch")
	}
	if bias != nil && bias.Size() != outC {
		panic("tensor: Conv2DBiasInto bias length mismatch")
	}
	if stride != 1 {
		rows := n * oh * ow
		cols := ws.Get(rows, c*kh*kw)
		Im2ColInto(cols, img, kh, kw, stride, padH, padW)
		flat := ws.Get(rows, outC)
		MatMulBiasInto(flat, cols, w, bias)
		ScatterNCHWInto(out, flat)
		ws.Put(flat)
		ws.Put(cols)
		return out
	}
	planes := n * outC
	cost := 2 * c * kh * kw * oh * ow
	if shouldPar(planes, cost) {
		od, id, wdd := out.data, img.data, w.data
		var bd []float64
		if bias != nil {
			bd = bias.data
		}
		ParallelFor(planes, cost, func(lo, hi int) {
			conv2DDirectPlanes(od, id, wdd, bd, c, h, wd, outC, oh, ow, kh, kw, padH, padW, lo, hi)
		})
	} else {
		var bd []float64
		if bias != nil {
			bd = bias.data
		}
		conv2DDirectPlanes(out.data, img.data, w.data, bd, c, h, wd, outC, oh, ow, kh, kw, padH, padW, 0, planes)
	}
	return out
}

// conv2DDirectPlanes computes output planes [lo,hi) (plane = b*outC+oc)
// of a stride-1 convolution: each plane is zeroed, then accumulates one
// axpyFMA row update per (c, ky, kx, valid oy) — the same ascending
// reduction order as the scalar reference.
func conv2DDirectPlanes(out, img, w, bias []float64, c, h, iw, outC, oh, ow, kh, kw, padH, padW, lo, hi int) {
	for plane := lo; plane < hi; plane++ {
		b := plane / outC
		oc := plane % outC
		oplane := out[plane*oh*ow : (plane+1)*oh*ow]
		for i := range oplane {
			oplane[i] = 0
		}
		for ch := 0; ch < c; ch++ {
			iplane := img[(b*c+ch)*h*iw : (b*c+ch+1)*h*iw]
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					wv := w[((ch*kh+ky)*kw+kx)*outC+oc]
					ox0 := 0
					if padW-kx > 0 {
						ox0 = padW - kx
					}
					ox1 := ow
					if iw+padW-kx < ox1 {
						ox1 = iw + padW - kx
					}
					if ox0 >= ox1 {
						continue
					}
					for oy := 0; oy < oh; oy++ {
						iy := oy + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						ix0 := ox0 + kx - padW
						axpyFMA(wv, iplane[iy*iw+ix0:iy*iw+ix0+(ox1-ox0)], oplane[oy*ow+ox0:oy*ow+ox1])
					}
				}
			}
		}
		if bias != nil {
			bv := bias[oc]
			for i := range oplane {
				oplane[i] += bv
			}
		}
	}
}

// RefConv2DInto is the naive scalar reference for Conv2DBiasInto
// (stride 1): per-element FMA accumulation in ascending (c, ky, kx)
// order, skipping padded taps, bias added with a plain + afterwards.
// Kept for bitwise cross-checks and benchmark baselines, not speed.
func RefConv2DInto(out, img, w, bias *Tensor, kh, kw, padH, padW int) *Tensor {
	n, c, h, iw := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	outC, oh, ow := out.shape[1], out.shape[2], out.shape[3]
	od, id, wd := out.data, img.data, w.data
	for b := 0; b < n; b++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := 0.0
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy + ky - padH
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox + kx - padW
								if ix < 0 || ix >= iw {
									continue
								}
								acc = math.FMA(id[((b*c+ch)*h+iy)*iw+ix], wd[((ch*kh+ky)*kw+kx)*outC+oc], acc)
							}
						}
					}
					if bias != nil {
						acc += bias.data[oc]
					}
					od[((b*outC+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// MaxPool2D applies 2-D max pooling to (N,C,H,W) and returns the pooled
// tensor plus the flat argmax indices (into the input) used by the
// backward pass.
func MaxPool2D(img *Tensor, k, stride int) (*Tensor, []int) {
	if len(img.shape) != 4 {
		panic("tensor: MaxPool2D requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, k, stride, 0)
	ow := ConvDims(w, k, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int, out.Size())
	MaxPool2DInto(out, arg, img, k, stride)
	return out, arg
}

// MaxPool2DInto performs max pooling into the caller-provided out tensor
// (shape (N,C,OH,OW)) and argmax slice (len out.Size()), both overwritten.
func MaxPool2DInto(out *Tensor, arg []int, img *Tensor, k, stride int) {
	if len(img.shape) != 4 {
		panic("tensor: MaxPool2DInto requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, k, stride, 0)
	ow := ConvDims(w, k, stride, 0)
	if out.Size() != n*c*oh*ow || len(arg) != out.Size() {
		panic("tensor: MaxPool2DInto output size mismatch")
	}
	oi := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bi := -1e308, -1
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx
							idx := base + iy*w + ix
							if v := img.data[idx]; v > best {
								best, bi = v, idx
							}
						}
					}
					out.data[oi] = best
					arg[oi] = bi
					oi++
				}
			}
		}
	}
}

// MaxPool2DBackward scatters upstream gradients through the argmax map
// produced by MaxPool2D, returning a gradient of inShape.
func MaxPool2DBackward(dout *Tensor, arg []int, inShape []int) *Tensor {
	din := New(inShape...)
	MaxPool2DBackwardInto(din, dout, arg)
	return din
}

// MaxPool2DBackwardInto scatters upstream gradients through the argmax map
// into the caller-provided din, which is zeroed first.
func MaxPool2DBackwardInto(din, dout *Tensor, arg []int) *Tensor {
	din.Zero()
	for i, g := range dout.data {
		din.data[arg[i]] += g
	}
	return din
}

// GlobalAvgPool reduces (N,C,H,W) to (N,C) by averaging each feature map.
func GlobalAvgPool(img *Tensor) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: GlobalAvgPool requires (N,C,H,W)")
	}
	out := New(img.shape[0], img.shape[1])
	GlobalAvgPoolInto(out, img)
	return out
}

// GlobalAvgPoolInto reduces (N,C,H,W) into the caller-provided (N,C) out.
func GlobalAvgPoolInto(out, img *Tensor) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: GlobalAvgPoolInto requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	if out.Size() != n*c {
		panic("tensor: GlobalAvgPoolInto output size mismatch")
	}
	area := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			s := 0.0
			for i := 0; i < h*w; i++ {
				s += img.data[base+i]
			}
			out.data[b*c+ch] = s / area
		}
	}
	return out
}

// GlobalAvgPoolBackward broadcasts (N,C) gradients back to (N,C,H,W).
func GlobalAvgPoolBackward(dout *Tensor, h, w int) *Tensor {
	din := New(dout.shape[0], dout.shape[1], h, w)
	GlobalAvgPoolBackwardInto(din, dout)
	return din
}

// GlobalAvgPoolBackwardInto broadcasts (N,C) gradients into the
// caller-provided (N,C,H,W) din, overwriting it.
func GlobalAvgPoolBackwardInto(din, dout *Tensor) *Tensor {
	if len(din.shape) != 4 {
		panic("tensor: GlobalAvgPoolBackwardInto requires (N,C,H,W) output")
	}
	n, c, h, w := din.shape[0], din.shape[1], din.shape[2], din.shape[3]
	if dout.Size() != n*c {
		panic("tensor: GlobalAvgPoolBackwardInto gradient size mismatch")
	}
	inv := 1 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := dout.data[b*c+ch] * inv
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				din.data[base+i] = g
			}
		}
	}
	return din
}
