package tensor

import "fmt"

// ConvDims computes output spatial size for a convolution/pooling window.
func ConvDims(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers an image batch of shape (N, C, H, W) to a matrix of shape
// (N*OH*OW, C*KH*KW) so that convolution becomes a single MatMul against a
// (C*KH*KW, OutC) filter matrix. Out-of-bounds (padding) samples are zero.
func Im2Col(img *Tensor, kh, kw, stride, padH, padW int) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: Im2Col requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, kh, stride, padH)
	ow := ConvDims(w, kw, stride, padW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col degenerate output %dx%d", oh, ow))
	}
	cols := New(n*oh*ow, c*kh*kw)
	Im2ColInto(cols, img, kh, kw, stride, padH, padW)
	return cols
}

// Im2ColInto lowers img into the caller-provided column matrix cols, which
// must have shape (N*OH*OW, C*KH*KW) and is fully overwritten (padding
// cells included).
func Im2ColInto(cols, img *Tensor, kh, kw, stride, padH, padW int) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: Im2ColInto requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, kh, stride, padH)
	ow := ConvDims(w, kw, stride, padW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColInto degenerate output %dx%d", oh, ow))
	}
	if len(cols.shape) != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Im2ColInto output shape %v, want (%d,%d)", cols.shape, n*oh*ow, c*kh*kw))
	}
	// Padding windows leave untouched cells; clear them up front so a
	// recycled buffer matches a freshly allocated one exactly.
	cols.Zero()
	colRow := 0
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - padH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - padW
				dst := cols.data[colRow*c*kh*kw : (colRow+1)*c*kh*kw]
				di := 0
				for ch := 0; ch < c; ch++ {
					base := ((b*c + ch) * h) * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							di += kw
							continue
						}
						rowBase := base + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								dst[di] = img.data[rowBase+ix]
							}
							di++
						}
					}
				}
				colRow++
			}
		}
	}
	return cols
}

// Col2Im scatters a column matrix (as produced by Im2Col) back into an
// image batch of shape (N, C, H, W), accumulating overlapping windows.
// It is the adjoint of Im2Col and is used in the convolution backward pass.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, padH, padW int) *Tensor {
	img := New(n, c, h, w)
	Col2ImInto(img, cols, kh, kw, stride, padH, padW)
	return img
}

// Col2ImInto scatters cols into the caller-provided image batch img of
// shape (N, C, H, W), overwriting it (img is zeroed, then overlapping
// windows accumulate).
func Col2ImInto(img, cols *Tensor, kh, kw, stride, padH, padW int) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: Col2ImInto requires (N,C,H,W) output")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, kh, stride, padH)
	ow := ConvDims(w, kw, stride, padW)
	if cols.shape[0] != n*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with (%d,%d,%d,%d) k=%dx%d", cols.shape, n, c, h, w, kh, kw))
	}
	img.Zero()
	colRow := 0
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - padH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - padW
				src := cols.data[colRow*c*kh*kw : (colRow+1)*c*kh*kw]
				si := 0
				for ch := 0; ch < c; ch++ {
					base := ((b*c + ch) * h) * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							si += kw
							continue
						}
						rowBase := base + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								img.data[rowBase+ix] += src[si]
							}
							si++
						}
					}
				}
				colRow++
			}
		}
	}
	return img
}

// MaxPool2D applies 2-D max pooling to (N,C,H,W) and returns the pooled
// tensor plus the flat argmax indices (into the input) used by the
// backward pass.
func MaxPool2D(img *Tensor, k, stride int) (*Tensor, []int) {
	if len(img.shape) != 4 {
		panic("tensor: MaxPool2D requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, k, stride, 0)
	ow := ConvDims(w, k, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int, out.Size())
	MaxPool2DInto(out, arg, img, k, stride)
	return out, arg
}

// MaxPool2DInto performs max pooling into the caller-provided out tensor
// (shape (N,C,OH,OW)) and argmax slice (len out.Size()), both overwritten.
func MaxPool2DInto(out *Tensor, arg []int, img *Tensor, k, stride int) {
	if len(img.shape) != 4 {
		panic("tensor: MaxPool2DInto requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	oh := ConvDims(h, k, stride, 0)
	ow := ConvDims(w, k, stride, 0)
	if out.Size() != n*c*oh*ow || len(arg) != out.Size() {
		panic("tensor: MaxPool2DInto output size mismatch")
	}
	oi := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bi := -1e308, -1
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx
							idx := base + iy*w + ix
							if v := img.data[idx]; v > best {
								best, bi = v, idx
							}
						}
					}
					out.data[oi] = best
					arg[oi] = bi
					oi++
				}
			}
		}
	}
}

// MaxPool2DBackward scatters upstream gradients through the argmax map
// produced by MaxPool2D, returning a gradient of inShape.
func MaxPool2DBackward(dout *Tensor, arg []int, inShape []int) *Tensor {
	din := New(inShape...)
	MaxPool2DBackwardInto(din, dout, arg)
	return din
}

// MaxPool2DBackwardInto scatters upstream gradients through the argmax map
// into the caller-provided din, which is zeroed first.
func MaxPool2DBackwardInto(din, dout *Tensor, arg []int) *Tensor {
	din.Zero()
	for i, g := range dout.data {
		din.data[arg[i]] += g
	}
	return din
}

// GlobalAvgPool reduces (N,C,H,W) to (N,C) by averaging each feature map.
func GlobalAvgPool(img *Tensor) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: GlobalAvgPool requires (N,C,H,W)")
	}
	out := New(img.shape[0], img.shape[1])
	GlobalAvgPoolInto(out, img)
	return out
}

// GlobalAvgPoolInto reduces (N,C,H,W) into the caller-provided (N,C) out.
func GlobalAvgPoolInto(out, img *Tensor) *Tensor {
	if len(img.shape) != 4 {
		panic("tensor: GlobalAvgPoolInto requires (N,C,H,W)")
	}
	n, c, h, w := img.shape[0], img.shape[1], img.shape[2], img.shape[3]
	if out.Size() != n*c {
		panic("tensor: GlobalAvgPoolInto output size mismatch")
	}
	area := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			s := 0.0
			for i := 0; i < h*w; i++ {
				s += img.data[base+i]
			}
			out.data[b*c+ch] = s / area
		}
	}
	return out
}

// GlobalAvgPoolBackward broadcasts (N,C) gradients back to (N,C,H,W).
func GlobalAvgPoolBackward(dout *Tensor, h, w int) *Tensor {
	din := New(dout.shape[0], dout.shape[1], h, w)
	GlobalAvgPoolBackwardInto(din, dout)
	return din
}

// GlobalAvgPoolBackwardInto broadcasts (N,C) gradients into the
// caller-provided (N,C,H,W) din, overwriting it.
func GlobalAvgPoolBackwardInto(din, dout *Tensor) *Tensor {
	if len(din.shape) != 4 {
		panic("tensor: GlobalAvgPoolBackwardInto requires (N,C,H,W) output")
	}
	n, c, h, w := din.shape[0], din.shape[1], din.shape[2], din.shape[3]
	if dout.Size() != n*c {
		panic("tensor: GlobalAvgPoolBackwardInto gradient size mismatch")
	}
	inv := 1 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := dout.data[b*c+ch] * inv
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				din.data[base+i] = g
			}
		}
	}
	return din
}
