package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 || a.NDim() != 3 || a.Dim(1) != 3 {
		t.Fatalf("bad shape metadata: %v size=%d", a.Shape(), a.Size())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dim")
		}
	}()
	New(2, -1)
}

func TestFromSliceAndAtSet(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(1, 2) != 6 || a.At(0, 0) != 1 {
		t.Fatalf("At wrong: %v", a.Data())
	}
	a.Set(9, 1, 1)
	if a.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.At(2, 0)
}

func TestOnesFullRandn(t *testing.T) {
	if Ones(3).Sum() != 3 {
		t.Fatal("Ones")
	}
	if Full(2.5, 4).Sum() != 10 {
		t.Fatal("Full")
	}
	rng := rand.New(rand.NewSource(1))
	r := Randn(rng, 1.0, 1000)
	if m := r.Mean(); math.Abs(m) > 0.15 {
		t.Fatalf("Randn mean too far from 0: %f", m)
	}
	u := RandUniform(rng, -1, 1, 1000)
	if u.Max() > 1 || u.Min() < -1 {
		t.Fatal("RandUniform out of range")
	}
}

func TestReshape(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Fatal("Reshape data sharing broken")
	}
	c := a.Reshape(-1, 2)
	if c.Dim(0) != 3 {
		t.Fatalf("inferred dim wrong: %v", c.Shape())
	}
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Fatal("Reshape must share data")
	}
}

func TestReshapePanics(t *testing.T) {
	a := New(2, 3)
	for _, shape := range [][]int{{4, 2}, {-1, -1}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", shape)
				}
			}()
			a.Reshape(shape...)
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Ones(3)
	b := a.Clone()
	b.Set(5, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 10 {
		t.Fatalf("Mul: %v", got)
	}
	if got := Div(b, a).Data(); got[2] != 2 {
		t.Fatalf("Div: %v", got)
	}
	c := a.Clone()
	c.AddInPlace(b).SubInPlace(b).MulInPlace(b)
	want := []float64{4, 10, 18}
	for i := range want {
		if c.Data()[i] != want[i] {
			t.Fatalf("chained in-place: %v", c.Data())
		}
	}
}

func TestScaleAxpyDotNorm(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if a.Norm2() != 5 {
		t.Fatal("Norm2")
	}
	b := a.Clone().Scale(2)
	if b.At(0) != 6 {
		t.Fatal("Scale")
	}
	b.Axpy(-2, a)
	if b.Norm2() != 0 {
		t.Fatal("Axpy")
	}
	if Dot(a, a) != 25 {
		t.Fatal("Dot")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{1, -2, 3, 0}, 4)
	if a.Sum() != 2 || a.Mean() != 0.5 || a.Max() != 3 || a.Min() != -2 || a.Argmax() != 2 {
		t.Fatalf("reductions wrong on %v", a.Data())
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	got := a.ArgmaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows: %v", got)
	}
}

func TestAxisReductionsAndRowOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumAxis0(a)
	if s.At(0) != 5 || s.At(2) != 9 {
		t.Fatalf("SumAxis0: %v", s.Data())
	}
	m := MeanAxis0(a)
	if m.At(1) != 3.5 {
		t.Fatalf("MeanAxis0: %v", m.Data())
	}
	b := a.Clone()
	b.AddRowVector(FromSlice([]float64{10, 20, 30}, 3))
	if b.At(1, 2) != 36 {
		t.Fatal("AddRowVector")
	}
	b = a.Clone()
	b.MulRowVector(FromSlice([]float64{2, 0, 1}, 3))
	if b.At(0, 0) != 2 || b.At(1, 1) != 0 {
		t.Fatal("MulRowVector")
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += s.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d does not sum to 1: %f", i, sum)
		}
	}
	// Shift invariance: both rows differ by a constant, so softmax is equal.
	for j := 0; j < 3; j++ {
		if math.Abs(s.At(0, j)-s.At(1, j)) > 1e-12 {
			t.Fatal("softmax not shift invariant / unstable for large inputs")
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", at.Data())
	}
}

func TestClip(t *testing.T) {
	a := FromSlice([]float64{-5, 0.5, 7}, 3)
	a.Clip(-1, 1)
	if a.At(0) != -1 || a.At(1) != 0.5 || a.At(2) != 1 {
		t.Fatalf("Clip: %v", a.Data())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul: %v want %v", c.Data(), want)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// naiveMatMul is the reference O(n³) ijk implementation used to validate
// the blocked parallel kernel.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaiveLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 1, 67, 45)
	b := Randn(rng, 1, 45, 83)
	got := MatMul(a, b)
	want := naiveMatMul(a, b)
	if !AllClose(got, want, 1e-9) {
		t.Fatal("parallel MatMul disagrees with naive reference")
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Randn(rng, 1, 13, 7)
	b := Randn(rng, 1, 11, 7)
	got := MatMulT(a, b)
	want := naiveMatMul(a, Transpose(b))
	if !AllClose(got, want, 1e-9) {
		t.Fatal("MatMulT disagrees with a×bᵀ")
	}
}

func TestTMatMulCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Randn(rng, 1, 9, 5)  // K=9, M=5
	b := Randn(rng, 1, 9, 11) // K=9, N=11
	got := TMatMul(a, b)
	want := naiveMatMul(Transpose(a), b)
	if !AllClose(got, want, 1e-9) {
		t.Fatal("TMatMul disagrees with aᵀ×b")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.At(0) != -2 || y.At(1) != -2 {
		t.Fatalf("MatVec: %v", y.Data())
	}
}

// Property: (A×B)×C == A×(B×C) within tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		p := 1 + rng.Intn(8)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return AllClose(left, right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and (AB)ᵀ = BᵀAᵀ.
func TestTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		k := 1 + rng.Intn(10)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		if !AllClose(Transpose(Transpose(a)), a, 0) {
			return false
		}
		return AllClose(Transpose(MatMul(a, b)), MatMul(Transpose(b), Transpose(a)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Col2Im is the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
func TestIm2ColAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2)
		c := 1 + rng.Intn(3)
		h := 4 + rng.Intn(5)
		w := 4 + rng.Intn(5)
		k := 2 + rng.Intn(2)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		x := Randn(rng, 1, n, c, h, w)
		cols := Im2Col(x, k, k, stride, pad, pad)
		y := Randn(rng, 1, cols.Dim(0), cols.Dim(1))
		lhs := Dot(cols, y)
		rhs := Dot(x, Col2Im(y, n, c, h, w, k, k, stride, pad, pad))
		return math.Abs(lhs-rhs) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: Im2Col is just a reshape.
	rng := rand.New(rand.NewSource(3))
	x := Randn(rng, 1, 2, 3, 4, 4)
	cols := Im2Col(x, 1, 1, 1, 0, 0)
	if cols.Dim(0) != 2*4*4 || cols.Dim(1) != 3 {
		t.Fatalf("Im2Col 1x1 shape: %v", cols.Shape())
	}
	// element (b,oy,ox) row, channel ch column equals x[b,ch,oy,ox]
	if cols.At(0, 1) != x.At(0, 1, 0, 0) {
		t.Fatal("Im2Col 1x1 values wrong")
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(x, 2, 2)
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("MaxPool2D: %v", out.Data())
		}
	}
	dout := Ones(1, 1, 2, 2)
	din := MaxPool2DBackward(dout, arg, x.Shape())
	// Gradient lands only at max positions.
	if din.At(0, 0, 1, 1) != 1 || din.At(0, 0, 0, 0) != 0 || din.At(0, 0, 3, 3) != 1 {
		t.Fatalf("MaxPool2DBackward: %v", din.Data())
	}
	if din.Sum() != 4 {
		t.Fatal("pool backward must conserve gradient mass")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out := GlobalAvgPool(x)
	if out.At(0, 0) != 2.5 || out.At(0, 1) != 25 {
		t.Fatalf("GlobalAvgPool: %v", out.Data())
	}
	din := GlobalAvgPoolBackward(out, 2, 2)
	if din.At(0, 0, 0, 0) != 2.5/4 {
		t.Fatal("GlobalAvgPoolBackward broadcast wrong")
	}
}

func TestConvDims(t *testing.T) {
	if ConvDims(32, 3, 1, 1) != 32 {
		t.Fatal("same-pad conv dims")
	}
	if ConvDims(32, 2, 2, 0) != 16 {
		t.Fatal("stride-2 pool dims")
	}
}

func TestApplyAndApplyInPlace(t *testing.T) {
	a := FromSlice([]float64{-1, 2}, 2)
	relu := Apply(a, func(v float64) float64 { return math.Max(0, v) })
	if relu.At(0) != 0 || relu.At(1) != 2 {
		t.Fatal("Apply")
	}
	a.ApplyInPlace(func(v float64) float64 { return v * v })
	if a.At(0) != 1 || a.At(1) != 4 {
		t.Fatal("ApplyInPlace")
	}
}

func TestAllCloseAndSameShape(t *testing.T) {
	a := Ones(2, 2)
	b := Ones(2, 2)
	b.Set(1+1e-12, 0, 0)
	if !AllClose(a, b, 1e-9) {
		t.Fatal("AllClose tolerance")
	}
	if AllClose(a, Ones(4), 1) {
		t.Fatal("AllClose must check shape")
	}
	if SameShape(a, Ones(2, 3)) {
		t.Fatal("SameShape")
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := a.Row(1)
	r[0] = 99
	if a.At(1, 0) != 99 {
		t.Fatal("Row must be a view")
	}
}

func TestMatMulIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 1, 5, 6)
	b := Randn(rng, 1, 6, 7)
	out := Full(123, 5, 7) // dirty buffer must be overwritten
	MatMulInto(out, a, b)
	if !AllClose(out, naiveMatMul(a, b), 1e-9) {
		t.Fatal("MatMulInto must overwrite output")
	}
}

func TestMatMulParallelPath(t *testing.T) {
	// On a single-core host the worker pool defaults to one participant
	// and the parallel path never runs; force it (and a tiny grain) so
	// the work-stealing kernel is exercised and verified.
	w, g := Workers(), loadCfg().grain
	Configure(WithWorkers(4), WithGrain(1024))
	t.Cleanup(func() { Configure(WithWorkers(w), WithGrain(g)) })
	rng := rand.New(rand.NewSource(77))
	a := Randn(rng, 1, 96, 70)
	b := Randn(rng, 1, 70, 90)
	got := MatMul(a, b)
	if !AllClose(got, naiveMatMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul path disagrees with reference")
	}
	gt := MatMulT(a, Randn(rng, 1, 90, 70))
	if gt.Dim(0) != 96 || gt.Dim(1) != 90 {
		t.Fatal("parallel MatMulT shape")
	}
	// More workers than rows: band loop must handle empty bands.
	small := Randn(rng, 1, 2, 70)
	got2 := MatMul(small, b)
	if !AllClose(got2, naiveMatMul(small, b), 1e-9) {
		t.Fatal("small-row parallel MatMul wrong")
	}
}

func TestZerosAddScalarMeanEmpty(t *testing.T) {
	z := Zeros(3, 2)
	if z.Sum() != 0 || z.Dim(0) != 3 {
		t.Fatal("Zeros")
	}
	z.AddScalar(2.5)
	if z.At(0, 0) != 2.5 || z.Sum() != 15 {
		t.Fatal("AddScalar")
	}
	if New(0).Mean() != 0 {
		t.Fatal("Mean of empty must be 0")
	}
}

func TestMaxMinPanicOnEmpty(t *testing.T) {
	for _, f := range []func(){
		func() { New(0).Max() },
		func() { New(0).Min() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestElementwiseShapeMismatchPanics(t *testing.T) {
	a, b := New(2), New(3)
	for _, f := range []func(){
		func() { Add(a, b) },
		func() { a.Axpy(1, b) },
		func() { Dot(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	v := []float64{0, 0, 0}
	normalize(v)
	if v[0] != 1 {
		t.Fatal("zero vector must normalize to a unit basis vector")
	}
}
