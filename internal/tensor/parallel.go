package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The shared kernel runtime: one persistent work-stealing worker pool that
// matmul, convolution, and elementwise kernels all dispatch through, with a
// single knob surface (Configure) replacing the per-call
// runtime.GOMAXPROCS reads and scattered thresholds the kernels used to
// carry individually.
//
// Design:
//
//   - A ParallelFor call splits [0,n) into one contiguous range per
//     participant. Each participant claims grain-sized chunks off the
//     front of its own range with a CAS, and when its range is empty it
//     steals the back half of another participant's range. The caller is
//     always participant 0, so a ParallelFor never deadlocks: with zero
//     free helpers (including nested ParallelFor calls from inside a
//     worker) the caller simply executes everything itself.
//   - Helper goroutines are lazily spawned, persistent, and shared by
//     every concurrent ParallelFor in the process (multiple goroutine
//     "ranks" of an mpi.World issue kernels concurrently; jobs queue and
//     helpers drain them in arrival order).
//   - Completion is an atomic count of executed indices; the participant
//     that retires the last index signals the caller. Tokens in the job
//     queue that arrive after completion find empty ranges and return
//     immediately.
//   - Grain is expressed in approximate scalar operations, not indices:
//     callers pass a per-index cost and the runtime converts, so a matmul
//     row (2·k·n flops) and an elementwise index (1 op) share one knob.
//
// Small operations never reach the pool: ParallelFor runs inline (and
// kernel call sites check shouldPar before even constructing the closure)
// below a work threshold, which keeps the PR-5 zero-allocation hot-path
// guarantees for small layers.

// config holds the kernel-runtime settings published by Configure. It is
// read via an atomic pointer so kernels pay one load, never a lock.
type config struct {
	workers int // max participants per parallel region
	grain   int // approx scalar ops per claimed chunk (and half the serial threshold)
	mc      int // row-block hint per parallel chunk (rows)
	kc      int // K blocking: packed panel depth
	nc      int // N blocking: packed column-strip width
}

var cfgPtr atomic.Pointer[config]

func init() {
	cfgPtr.Store(&config{
		workers: runtime.GOMAXPROCS(0),
		grain:   16384,
		mc:      128,
		kc:      512,
		nc:      2048,
	})
}

func loadCfg() *config { return cfgPtr.Load() }

// Option configures the kernel runtime (see Configure).
type Option func(*config)

// WithWorkers sets the maximum number of goroutines (including the
// caller) a single kernel may spread across. n < 1 is clamped to 1;
// 1 disables kernel parallelism entirely. Module-sized worlds (many
// concurrent goroutine ranks on one host) should set this low so ranks
// do not oversubscribe the machine.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.workers = n
	}
}

// WithGrain sets the scheduling grain in approximate scalar operations
// per claimed chunk. Work smaller than ~2 grains runs inline on the
// caller. Values below 1024 are clamped.
func WithGrain(n int) Option {
	return func(c *config) {
		if n < 1024 {
			n = 1024
		}
		c.grain = n
	}
}

// WithBlockSizes sets the packed-matmul cache blocking: mc is the
// row-block hint per parallel chunk, kc the packed panel depth (sized so
// a kc×8 B panel and 4×kc A panel stay L1/L2 resident), nc the column
// strip width packed per pass. Non-positive values keep the current
// setting.
func WithBlockSizes(mc, kc, nc int) Option {
	return func(c *config) {
		if mc > 0 {
			c.mc = mc
		}
		if kc > 0 {
			c.kc = kc
		}
		if nc > 0 {
			c.nc = nc
		}
	}
}

var configMu sync.Mutex

// Configure atomically updates the kernel-runtime settings. Safe to call
// concurrently with running kernels: in-flight operations keep the
// snapshot they started with. Typical use is a one-time call at process
// start (the -kernel-workers flag of msa-train/msa-serve/msa-bench).
func Configure(opts ...Option) {
	configMu.Lock()
	defer configMu.Unlock()
	c := *cfgPtr.Load()
	for _, o := range opts {
		o(&c)
	}
	cfgPtr.Store(&c)
}

// Workers reports the configured maximum participants per kernel.
func Workers() int { return loadCfg().workers }

// BlockSizes reports the configured packed-matmul blocking (mc, kc, nc).
func BlockSizes() (mc, kc, nc int) {
	c := loadCfg()
	return c.mc, c.kc, c.nc
}

// shouldPar reports whether a loop of n indices at the given scalar-op
// cost per index is worth dispatching to the pool. Kernel call sites
// check this before constructing the parallel closure so that small
// operations stay allocation-free.
func shouldPar(n, cost int) bool {
	c := loadCfg()
	return c.workers > 1 && n*cost >= 2*c.grain
}

// maxParticipants bounds the participants of one job so ranges fit a
// fixed array inside the job (no per-call slice allocation).
const maxParticipants = 16

// pfRange is one participant's remaining range, packed (lo<<32 | hi)
// into a single atomic word and padded to its own cache line.
type pfRange struct {
	bits atomic.Uint64
	_    [7]uint64
}

func packRange(lo, hi int) uint64     { return uint64(lo)<<32 | uint64(hi) }
func unpackRange(b uint64) (int, int) { return int(b >> 32), int(b & 0xffffffff) }

type pfJob struct {
	fn       func(lo, hi int)
	n        int
	grain    int
	slots    int32
	nextSlot atomic.Int32
	executed atomic.Int64
	done     chan struct{}
	ranges   [maxParticipants]pfRange
}

// drain claims grain-sized chunks off the front of r until it is empty,
// returning the number of indices executed.
func (j *pfJob) drain(r *pfRange) int {
	count := 0
	for {
		b := r.bits.Load()
		lo, hi := unpackRange(b)
		if lo >= hi {
			return count
		}
		nlo := lo + j.grain
		if nlo > hi {
			nlo = hi
		}
		if r.bits.CompareAndSwap(b, packRange(nlo, hi)) {
			j.fn(lo, nlo)
			count += nlo - lo
		}
	}
}

// steal takes the back half of r (leaving the front for its owner) and
// executes it, returning the number of indices executed (0 if r was
// empty or contended away).
func (j *pfJob) steal(r *pfRange) int {
	for {
		b := r.bits.Load()
		lo, hi := unpackRange(b)
		if hi-lo <= 0 {
			return 0
		}
		mid := lo + (hi-lo+1)/2
		if r.bits.CompareAndSwap(b, packRange(lo, mid)) {
			count := 0
			for x := mid; x < hi; x += j.grain {
				e := x + j.grain
				if e > hi {
					e = hi
				}
				j.fn(x, e)
				count += e - x
			}
			return count
		}
	}
}

// participate drains the next free slot's range, then loops stealing
// from the others until no range holds work. The participant that
// retires the last index signals completion.
func (j *pfJob) participate() {
	s := j.nextSlot.Add(1) - 1
	total := 0
	if s < j.slots {
		total += j.drain(&j.ranges[s])
	}
	for {
		stole := 0
		for v := int32(0); v < j.slots; v++ {
			stole += j.steal(&j.ranges[(s+1+v)%j.slots])
		}
		total += stole
		if stole == 0 {
			break
		}
	}
	if total > 0 && j.executed.Add(int64(total)) == int64(j.n) {
		j.done <- struct{}{}
	}
}

// The persistent helper pool. Helpers block on jobCh; tokens are sent
// non-blocking (a full queue just means the caller and current thieves
// finish the job themselves).
var (
	poolMu      sync.Mutex
	poolHelpers int
	jobCh       = make(chan *pfJob, 64)
)

func ensureHelpers(n int) {
	if n <= poolHelpers { // racy fast check; poolMu settles it
		return
	}
	poolMu.Lock()
	for poolHelpers < n {
		poolHelpers++
		go func() {
			for job := range jobCh {
				job.participate()
			}
		}()
	}
	poolMu.Unlock()
}

// ParallelFor runs fn over disjoint subranges covering [0, n). cost is
// the approximate number of scalar operations per index; the runtime
// uses it to size chunks (WithGrain) and to run small loops inline on
// the caller. fn must be safe to call concurrently on disjoint ranges
// and must not retain its arguments. ParallelFor returns when every
// index has been executed. Nested calls are safe: inner calls run inline
// on whichever goroutine issues them if the pool is busy.
//
// Results are independent of the worker count for any fn that writes
// only inside [lo, hi): the split changes which goroutine computes a
// range, never the per-index work.
func ParallelFor(n, cost int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	c := loadCfg()
	if cost < 1 {
		cost = 1
	}
	if c.workers <= 1 || n*cost < 2*c.grain {
		fn(0, n)
		return
	}
	grain := c.grain / cost
	if grain < 1 {
		grain = 1
	}
	slots := c.workers
	if slots > maxParticipants {
		slots = maxParticipants
	}
	if maxUseful := (n + grain - 1) / grain; slots > maxUseful {
		slots = maxUseful
	}
	if slots <= 1 {
		fn(0, n)
		return
	}
	job := &pfJob{fn: fn, n: n, grain: grain, slots: int32(slots), done: make(chan struct{}, 1)}
	per := n / slots
	rem := n % slots
	lo := 0
	for s := 0; s < slots; s++ {
		hi := lo + per
		if s < rem {
			hi++
		}
		job.ranges[s].bits.Store(packRange(lo, hi))
		lo = hi
	}
	ensureHelpers(slots - 1)
	for s := 1; s < slots; s++ {
		select {
		case jobCh <- job:
		default: // queue full: remaining slots get drained by thieves
		}
	}
	job.participate()
	<-job.done
}
