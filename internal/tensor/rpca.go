package tensor

import (
	"math"
	"math/rand"
	"sort"
)

// Robust PCA by alternating projections: decompose X ≈ L + S with L
// low-rank (the background) and S sparse (the anomalies). This is the
// "distributed parallel algorithm based on low-rank and sparse
// representation for anomaly detection in hyperspectral images" the
// paper's related work surveys (Zhang et al. [35]), in its standard
// centralized form: iterate a rank-k projection of X−S (via the power-
// iteration PCA kernel) against soft-thresholding of the residual X−L.
type RPCAResult struct {
	L, S       *Tensor
	Iterations int
}

// RPCAConfig tunes the decomposition.
type RPCAConfig struct {
	Rank      int     // rank of the background component
	Lambda    float64 // soft threshold; default 3·MAD of initial residual
	MaxIter   int     // default 25
	PowerIter int     // power iterations per PCA; default 30
	Seed      int64
}

// RPCA decomposes x (N, D) into low-rank + sparse parts.
func RPCA(x *Tensor, cfg RPCAConfig) RPCAResult {
	if x.NDim() != 2 {
		panic("tensor: RPCA requires (N, D) data")
	}
	if cfg.Rank < 1 || cfg.Rank > x.Dim(1) {
		panic("tensor: RPCA rank out of range")
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 25
	}
	if cfg.PowerIter == 0 {
		cfg.PowerIter = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := New(x.Shape()...)
	var l *Tensor
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		// Low-rank step: rank-k PCA reconstruction of X - S.
		residual := Sub(x, s)
		comps, means := PCA(residual, cfg.Rank, cfg.PowerIter, rng)
		l = PCAReconstruct(PCAProject(residual, comps, means), comps, means)

		// Sparse step: soft-threshold X - L.
		diff := Sub(x, l)
		lambda := cfg.Lambda
		if lambda == 0 {
			lambda = 3 * medianAbs(diff.Data())
		}
		prev := s
		s = Apply(diff, func(v float64) float64 {
			switch {
			case v > lambda:
				return v - lambda
			case v < -lambda:
				return v + lambda
			default:
				return 0
			}
		})
		// Converged when the sparse part stops moving.
		if AllClose(prev, s, 1e-7) {
			iter++
			break
		}
	}
	return RPCAResult{L: l, S: s, Iterations: iter}
}

// medianAbs returns the median of |v|: a robust scale estimate.
func medianAbs(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	abs := make([]float64, len(v))
	for i, x := range v {
		abs[i] = math.Abs(x)
	}
	sort.Float64s(abs)
	return abs[len(abs)/2]
}

// AnomalyScores returns the per-row L2 norm of the sparse component: the
// detector statistic for hyperspectral anomaly detection.
func (r RPCAResult) AnomalyScores() []float64 {
	n, d := r.S.Dim(0), r.S.Dim(1)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		row := r.S.Row(i)
		s := 0.0
		for j := 0; j < d; j++ {
			s += row[j] * row[j]
		}
		out[i] = math.Sqrt(s)
	}
	return out
}
