package tensor

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func resetConfigAfter(t *testing.T) {
	t.Helper()
	c := *loadCfg()
	t.Cleanup(func() {
		Configure(WithWorkers(c.workers), WithGrain(c.grain), WithBlockSizes(c.mc, c.kc, c.nc))
	})
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	resetConfigAfter(t)
	Configure(WithWorkers(8), WithGrain(1024))
	for _, n := range []int{0, 1, 7, 100, 1000, 65536} {
		hits := make([]int32, n)
		ParallelFor(n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestParallelForSmallRunsInline(t *testing.T) {
	resetConfigAfter(t)
	Configure(WithWorkers(8), WithGrain(16384))
	calls := 0
	ParallelFor(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("small loop must run as one inline range, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("small loop split into %d calls", calls)
	}
}

func TestParallelForNested(t *testing.T) {
	resetConfigAfter(t)
	Configure(WithWorkers(4), WithGrain(1024))
	var total atomic.Int64
	ParallelFor(64, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(128, 64, func(l2, h2 int) {
				total.Add(int64(h2 - l2))
			})
		}
	})
	if total.Load() != 64*128 {
		t.Fatalf("nested ParallelFor executed %d of %d indices", total.Load(), 64*128)
	}
}

// TestParallelForConcurrentRanks hammers the shared pool from many
// goroutines at once, the way concurrent mpi ranks issue kernels. Run
// under -race this is the data-race gate for the runtime; the sums catch
// lost or doubled ranges.
func TestParallelForConcurrentRanks(t *testing.T) {
	resetConfigAfter(t)
	Configure(WithWorkers(4), WithGrain(1024))
	const ranks, iters, n = 8, 25, 4096
	var wg sync.WaitGroup
	errs := make(chan error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]int64, n)
			for it := 0; it < iters; it++ {
				mark := rng.Int63n(1 << 30)
				ParallelFor(n, 32, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						buf[i] = mark + int64(i)
					}
				})
				for i := int64(0); i < n; i++ {
					if buf[i] != mark+i {
						errs <- &indexError{int(i)}
						return
					}
				}
			}
		}(int64(r))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

type indexError struct{ i int }

func (e *indexError) Error() string { return "ParallelFor lost or corrupted an index" }

// TestParallelForMatMulUnderContention issues real kernels from
// concurrent goroutines and cross-checks each against the reference —
// the end-to-end version of the race gate.
func TestParallelForMatMulUnderContention(t *testing.T) {
	resetConfigAfter(t)
	Configure(WithWorkers(4), WithGrain(1024))
	rng := rand.New(rand.NewSource(99))
	a := randn2(rng, 48, 64)
	b := randn2(rng, 64, 56)
	want := New(48, 56)
	RefMatMulInto(want, a, b)
	var wg sync.WaitGroup
	fail := make(chan struct{}, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := New(48, 56)
			for it := 0; it < 10; it++ {
				MatMulInto(out, a, b)
				if !bitEqual64(out, want) {
					fail <- struct{}{}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	if _, bad := <-fail; bad {
		t.Fatal("concurrent MatMul produced wrong bits")
	}
}

func TestConfigureClamps(t *testing.T) {
	resetConfigAfter(t)
	Configure(WithWorkers(-3), WithGrain(10))
	if Workers() != 1 {
		t.Fatalf("WithWorkers must clamp to 1, got %d", Workers())
	}
	if g := loadCfg().grain; g != 1024 {
		t.Fatalf("WithGrain must clamp to 1024, got %d", g)
	}
	Configure(WithBlockSizes(0, -1, 0)) // non-positive keeps current
	mc, kc, nc := BlockSizes()
	if mc <= 0 || kc <= 0 || nc <= 0 {
		t.Fatalf("BlockSizes corrupted: %d %d %d", mc, kc, nc)
	}
	Configure(WithBlockSizes(64, 256, 1024))
	mc, kc, nc = BlockSizes()
	if mc != 64 || kc != 256 || nc != 1024 {
		t.Fatalf("WithBlockSizes not applied: %d %d %d", mc, kc, nc)
	}
}
