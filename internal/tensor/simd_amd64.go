//go:build amd64

package tensor

import "os"

//go:noescape
func gemm4x8AVX(k int, ap, bp, c *float64, ldc int)

//go:noescape
func axpyAVX(alpha float64, x, y *float64, n int)

//go:noescape
func vecAddAVX(dst, a, b *float64, n int)

//go:noescape
func vecMulAVX(dst, a, b *float64, n int)

//go:noescape
func vecMaxAVX(dst, a, b *float64, n int)

//go:noescape
func vecMinAVX(dst, a, b *float64, n int)

//go:noescape
func vecScaleAVX(dst, a *float64, s float64, n int)

//go:noescape
func vecAxpyPlainAVX(alpha float64, x, y *float64, n int)

//go:noescape
func vecSumAVX(x *float64, n int) float64

//go:noescape
func vecReLUAVX(dst, a *float64, n int)

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// useAVX gates the assembly kernels on AVX2+FMA with OS-enabled YMM
// state. Tests flip it to cross-check the assembly against the portable
// math.FMA fallbacks bit for bit; setting MSA_NO_AVX=1 forces the
// pure-Go path for a whole process (CI runs the collective race suite
// both ways).
var useAVX = os.Getenv("MSA_NO_AVX") == "" && detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	if xlo, _ := xgetbvAsm(); xlo&0x6 != 0x6 { // XMM+YMM state enabled
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// gemm4x8 accumulates a 4×8 C tile (row stride ldc) with the packed
// panels ap (4-wide, p-major) and bp (8-wide, p-major) over k steps.
func gemm4x8(k int, ap, bp, c []float64, ldc int) {
	if useAVX {
		gemm4x8AVX(k, &ap[0], &bp[0], &c[0], ldc)
		return
	}
	gemm4x8Go(k, ap, bp, c, ldc)
}

// axpyFMA performs y[i] = fma(alpha, x[i], y[i]) elementwise.
func axpyFMA(alpha float64, x, y []float64) {
	if len(y) == 0 {
		return
	}
	if useAVX {
		axpyAVX(alpha, &x[0], &y[0], len(y))
		return
	}
	axpyFMAGo(alpha, x, y)
}

// Slice-level dispatchers for the vector-op layer. Callers (vec.go)
// guarantee len(a), len(b) >= len(dst).

func vecAdd(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX {
		vecAddAVX(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	vecAddGo(dst, a, b)
}

func vecMul(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX {
		vecMulAVX(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	vecMulGo(dst, a, b)
}

func vecMax(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX {
		vecMaxAVX(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	vecMaxGo(dst, a, b)
}

func vecMin(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX {
		vecMinAVX(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	vecMinGo(dst, a, b)
}

func vecScale(dst, a []float64, s float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX {
		vecScaleAVX(&dst[0], &a[0], s, len(dst))
		return
	}
	vecScaleGo(dst, a, s)
}

func vecAxpyPlain(alpha float64, x, y []float64) {
	if len(y) == 0 {
		return
	}
	if useAVX {
		vecAxpyPlainAVX(alpha, &x[0], &y[0], len(y))
		return
	}
	vecAxpyPlainGo(alpha, x, y)
}

func vecSum(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if useAVX {
		return vecSumAVX(&x[0], len(x))
	}
	return vecSumGo(x)
}

func vecReLU(dst, a []float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX {
		vecReLUAVX(&dst[0], &a[0], len(dst))
		return
	}
	vecReLUGo(dst, a)
}
