//go:build amd64

package tensor

//go:noescape
func gemm4x8AVX(k int, ap, bp, c *float64, ldc int)

//go:noescape
func axpyAVX(alpha float64, x, y *float64, n int)

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// useAVX gates the assembly kernels on AVX2+FMA with OS-enabled YMM
// state. Tests flip it to cross-check the assembly against the portable
// math.FMA fallbacks bit for bit.
var useAVX = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	if xlo, _ := xgetbvAsm(); xlo&0x6 != 0x6 { // XMM+YMM state enabled
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// gemm4x8 accumulates a 4×8 C tile (row stride ldc) with the packed
// panels ap (4-wide, p-major) and bp (8-wide, p-major) over k steps.
func gemm4x8(k int, ap, bp, c []float64, ldc int) {
	if useAVX {
		gemm4x8AVX(k, &ap[0], &bp[0], &c[0], ldc)
		return
	}
	gemm4x8Go(k, ap, bp, c, ldc)
}

// axpyFMA performs y[i] = fma(alpha, x[i], y[i]) elementwise.
func axpyFMA(alpha float64, x, y []float64) {
	if len(y) == 0 {
		return
	}
	if useAVX {
		axpyAVX(alpha, &x[0], &y[0], len(y))
		return
	}
	axpyFMAGo(alpha, x, y)
}
