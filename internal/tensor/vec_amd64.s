//go:build amd64

#include "textflag.h"

// AVX2 kernels for the shared vector-op layer (vec.go), gated at runtime
// by useAVX. Every kernel performs exactly one IEEE operation per element
// in the same operand order as its Go reference in simd.go, so the two
// paths are bit-identical — including NaN propagation and signed zeros.
// Operand-order notes below are in Go assembler syntax, where the operand
// order is reversed from Intel: `VOP src2, src1, dst`.
//
// Layout convention (shared with axpyAVX): an 8-elements-per-iteration
// main loop on two YMM registers, a 4-element tail, then a scalar tail.

// func vecAddAVX(dst, a, b *float64, n int)
//
// dst[i] = a[i] + b[i]. src1 = a, matching Go's `a[i] + b[i]` codegen so
// double-NaN inputs propagate the same payload.
TEXT ·vecAddAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   addtail4

addloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VADDPD  (DX), Y1, Y1
	VADDPD  32(DX), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, DI
	DECQ    BX
	JNZ     addloop8

addtail4:
	TESTQ $4, CX
	JZ    addtail1
	VMOVUPD (SI), Y1
	VADDPD  (DX), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI

addtail1:
	ANDQ $3, CX
	JZ   adddone

addscalar:
	VMOVSD (SI), X1
	VADDSD (DX), X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    addscalar

adddone:
	VZEROUPPER
	RET

// func vecMulAVX(dst, a, b *float64, n int)
//
// dst[i] = a[i] * b[i]; src1 = a as in vecAddAVX.
TEXT ·vecMulAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   multail4

mulloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  (DX), Y1, Y1
	VMULPD  32(DX), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, DI
	DECQ    BX
	JNZ     mulloop8

multail4:
	TESTQ $4, CX
	JZ    multail1
	VMOVUPD (SI), Y1
	VMULPD  (DX), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI

multail1:
	ANDQ $3, CX
	JZ   muldone

mulscalar:
	VMOVSD (SI), X1
	VMULSD (DX), X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    mulscalar

muldone:
	VZEROUPPER
	RET

// func vecMaxAVX(dst, a, b *float64, n int)
//
// dst[i] = b[i] if b[i] > a[i], else a[i]. MAXPD returns src2 on NaN and
// on ties, so with src1 = b and src2 = a (Go syntax: VMAXPD Ya, Yb, Ydst)
// the hardware reproduces the scalar `if b > a { dst = b } else { dst = a }`
// branch exactly — a keeps NaNs and wins ±0 ties.
TEXT ·vecMaxAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   maxtail4

maxloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMOVUPD (DX), Y3
	VMOVUPD 32(DX), Y4
	VMAXPD  Y1, Y3, Y1
	VMAXPD  Y2, Y4, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, DI
	DECQ    BX
	JNZ     maxloop8

maxtail4:
	TESTQ $4, CX
	JZ    maxtail1
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y3
	VMAXPD  Y1, Y3, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI

maxtail1:
	ANDQ $3, CX
	JZ   maxdone

maxscalar:
	VMOVSD (SI), X1
	VMOVSD (DX), X3
	VMAXSD X1, X3, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    maxscalar

maxdone:
	VZEROUPPER
	RET

// func vecMinAVX(dst, a, b *float64, n int)
//
// dst[i] = b[i] if b[i] < a[i], else a[i] — the MINPD mirror of
// vecMaxAVX with the same src1 = b, src2 = a convention.
TEXT ·vecMinAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   mintail4

minloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMOVUPD (DX), Y3
	VMOVUPD 32(DX), Y4
	VMINPD  Y1, Y3, Y1
	VMINPD  Y2, Y4, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DX
	ADDQ    $64, DI
	DECQ    BX
	JNZ     minloop8

mintail4:
	TESTQ $4, CX
	JZ    mintail1
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y3
	VMINPD  Y1, Y3, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI

mintail1:
	ANDQ $3, CX
	JZ   mindone

minscalar:
	VMOVSD (SI), X1
	VMOVSD (DX), X3
	VMINSD X1, X3, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    minscalar

mindone:
	VZEROUPPER
	RET

// func vecScaleAVX(dst, a *float64, s float64, n int)
//
// dst[i] = a[i] * s; src1 = a, matching Go's `a[i] * s`.
TEXT ·vecScaleAVX(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         a+8(FP), SI
	VBROADCASTSD s+16(FP), Y0
	MOVQ         n+24(FP), CX
	MOVQ         CX, BX
	SHRQ         $3, BX
	JZ           scaletail4

scaleloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     scaleloop8

scaletail4:
	TESTQ $4, CX
	JZ    scaletail1
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

scaletail1:
	ANDQ $3, CX
	JZ   scaledone

scalescalar:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    scalescalar

scaledone:
	VZEROUPPER
	RET

// func vecAxpyPlainAVX(alpha float64, x, y *float64, n int)
//
// y[i] += alpha * x[i] with a SEPARATELY ROUNDED multiply then add (no
// FMA), bit-identical to the scalar `y += alpha*x` loop. The multiply's
// src1 = alpha and the add's src1 = y, matching Go codegen operand order.
TEXT ·vecAxpyPlainAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), CX
	MOVQ         CX, BX
	SHRQ         $3, BX
	JZ           axpytail4

axpyloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  Y1, Y0, Y1
	VMULPD  Y2, Y0, Y2
	VMOVUPD (DI), Y3
	VMOVUPD 32(DI), Y4
	VADDPD  Y1, Y3, Y3
	VADDPD  Y2, Y4, Y4
	VMOVUPD Y3, (DI)
	VMOVUPD Y4, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     axpyloop8

axpytail4:
	TESTQ $4, CX
	JZ    axpytail1
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (DI), Y3
	VADDPD  Y1, Y3, Y3
	VMOVUPD Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

axpytail1:
	ANDQ $3, CX
	JZ   axpydone

axpyscalar:
	VMOVSD (SI), X1
	VMULSD X1, X0, X1
	VMOVSD (DI), X3
	VADDSD X1, X3, X3
	VMOVSD X3, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    axpyscalar

axpydone:
	VZEROUPPER
	RET

// func vecSumAVX(x *float64, n int) float64
//
// The fixed 4-lane sum: one YMM accumulator takes stride-4 partial sums
// (lane j holds x[j] + x[j+4] + …), lanes fold as (l0+l2) + (l1+l3), and
// the <4 remainder folds in last — the exact order of vecSumGo, with the
// accumulator always src1 so double-NaN payloads propagate identically.
TEXT ·vecSumAVX(SB), NOSPLIT, $0-24
	MOVQ   x+0(FP), SI
	MOVQ   n+8(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ   CX, BX
	SHRQ   $2, BX
	JZ     sumfold

sumloop4:
	VADDPD (SI), Y0, Y0
	ADDQ   $32, SI
	DECQ   BX
	JNZ    sumloop4

sumfold:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VUNPCKHPD    X0, X0, X1
	VADDSD       X1, X0, X0
	ANDQ         $3, CX
	JZ           sumdone

sumscalar:
	VADDSD (SI), X0, X0
	ADDQ   $8, SI
	DECQ   CX
	JNZ    sumscalar

sumdone:
	VMOVSD X0, ret+16(FP)
	VZEROUPPER
	RET

// func vecReLUAVX(dst, a *float64, n int)
//
// dst[i] = +0 when a[i] <= 0, else a[i]. A plain MAX-against-zero would
// zero NaNs and break bitwise identity with the scalar branch, so this
// builds the (a <= 0) mask with an ordered-quiet VCMPPD (predicate 2:
// unordered compares are false, letting NaN through) and clears masked
// lanes with VANDNPD.
TEXT ·vecReLUAVX(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   a+8(FP), SI
	MOVQ   n+16(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ   CX, BX
	SHRQ   $3, BX
	JZ     relutail4

reluloop8:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VCMPPD  $2, Y0, Y1, Y3
	VCMPPD  $2, Y0, Y2, Y4
	VANDNPD Y1, Y3, Y1
	VANDNPD Y2, Y4, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    BX
	JNZ     reluloop8

relutail4:
	TESTQ $4, CX
	JZ    relutail1
	VMOVUPD (SI), Y1
	VCMPPD  $2, Y0, Y1, Y3
	VANDNPD Y1, Y3, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI

relutail1:
	ANDQ $3, CX
	JZ   reludone

reluscalar:
	VMOVSD  (SI), X1
	VCMPSD  $2, X0, X1, X3
	VANDNPD X1, X3, X1
	VMOVSD  X1, (DI)
	ADDQ    $8, SI
	ADDQ    $8, DI
	DECQ    CX
	JNZ     reluscalar

reludone:
	VZEROUPPER
	RET
