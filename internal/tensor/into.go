package tensor

import "math"

// Into-variants of the allocating elementwise/reduction ops. Each op has
// exactly one kernel — the Into form — and every other spelling
// (allocating Foo, method FooInPlace) is a thin wrapper over it, so all
// paths stay bitwise identical by construction. The binary elementwise
// kernels are dtype-generic (float32 tensors compute in float32; the
// matmul family is where float64 accumulation lives) and run on the
// shared ParallelFor runtime when the tensor is large enough to pay for
// it.
//
// Naming convention: out must have the correct shape (and dtype) and is
// fully overwritten. out may not alias an input unless the specific op
// notes it is safe.

// ewRange dispatches one elementwise range kernel serially or over the
// worker pool. rangeFn is a top-level function, so the serial path
// constructs no closure and allocates nothing.
func ewRange[T float32 | float64](od, ad, bd []T, cost int, rangeFn func(od, ad, bd []T, lo, hi int)) {
	n := len(od)
	if shouldPar(n, cost) {
		ParallelFor(n, cost, func(lo, hi int) { rangeFn(od, ad, bd, lo, hi) })
		return
	}
	rangeFn(od, ad, bd, 0, n)
}

func addRange[T float32 | float64](od, ad, bd []T, lo, hi int) {
	for i := lo; i < hi; i++ {
		od[i] = ad[i] + bd[i]
	}
}

func subRange[T float32 | float64](od, ad, bd []T, lo, hi int) {
	for i := lo; i < hi; i++ {
		od[i] = ad[i] - bd[i]
	}
}

func mulRange[T float32 | float64](od, ad, bd []T, lo, hi int) {
	for i := lo; i < hi; i++ {
		od[i] = ad[i] * bd[i]
	}
}

func divRange[T float32 | float64](od, ad, bd []T, lo, hi int) {
	for i := lo; i < hi; i++ {
		od[i] = ad[i] / bd[i]
	}
}

// AddInto sets out = a+b elementwise. out may alias a or b.
func AddInto(out, a, b *Tensor) *Tensor {
	checkSame("AddInto", a, b)
	checkSame("AddInto", out, a)
	if out.dtype == Float32 {
		ewRange(out.data32, a.data32, b.data32, 1, addRange[float32])
	} else {
		VecAddInto(out.data, a.data, b.data)
	}
	return out
}

// SubInto sets out = a-b elementwise. out may alias a or b.
func SubInto(out, a, b *Tensor) *Tensor {
	checkSame("SubInto", a, b)
	checkSame("SubInto", out, a)
	if out.dtype == Float32 {
		ewRange(out.data32, a.data32, b.data32, 1, subRange[float32])
	} else {
		ewRange(out.data, a.data, b.data, 1, subRange[float64])
	}
	return out
}

// MulInto sets out = a*b elementwise (Hadamard). out may alias a or b.
func MulInto(out, a, b *Tensor) *Tensor {
	checkSame("MulInto", a, b)
	checkSame("MulInto", out, a)
	if out.dtype == Float32 {
		ewRange(out.data32, a.data32, b.data32, 1, mulRange[float32])
	} else {
		VecMulInto(out.data, a.data, b.data)
	}
	return out
}

// DivInto sets out = a/b elementwise. out may alias a or b.
func DivInto(out, a, b *Tensor) *Tensor {
	checkSame("DivInto", a, b)
	checkSame("DivInto", out, a)
	if out.dtype == Float32 {
		ewRange(out.data32, a.data32, b.data32, 1, divRange[float32])
	} else {
		ewRange(out.data, a.data, b.data, 1, divRange[float64])
	}
	return out
}

// ApplyInto sets out[i] = f(a[i]); for float32 storage each element is
// widened, mapped in float64, and rounded once. out may alias a. This is
// the single kernel behind Apply and ApplyInPlace.
func ApplyInto(out, a *Tensor, f func(float64) float64) *Tensor {
	checkSame("ApplyInto", out, a)
	// f is an arbitrary function call per element: assume it is
	// expensive enough to parallelize an order of magnitude sooner than
	// the arithmetic kernels.
	const applyCost = 16
	if out.dtype == Float32 {
		od, ad := out.data32, a.data32
		if shouldPar(len(od), applyCost) {
			ParallelFor(len(od), applyCost, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					od[i] = float32(f(float64(ad[i])))
				}
			})
		} else {
			for i, v := range ad {
				od[i] = float32(f(float64(v)))
			}
		}
		return out
	}
	od, ad := out.data, a.data
	if shouldPar(len(od), applyCost) {
		ParallelFor(len(od), applyCost, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = f(ad[i])
			}
		})
	} else {
		for i, v := range ad {
			od[i] = f(v)
		}
	}
	return out
}

// SumAxis0Into reduces a 2-D float64 tensor over rows into out (shape
// (C)), overwriting out.
func SumAxis0Into(out, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SumAxis0Into requires a 2-D tensor")
	}
	if a.dtype != Float64 || out.dtype != Float64 {
		panic("tensor: SumAxis0Into requires float64 tensors")
	}
	if out.Size() != a.shape[1] {
		panic("tensor: SumAxis0Into output size mismatch")
	}
	r, c := a.shape[0], a.shape[1]
	for j := range out.data {
		out.data[j] = 0
	}
	for i := 0; i < r; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// softmaxRows computes the row-wise softmax for rows [lo,hi).
func softmaxRows(od, ad []float64, c, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := ad[i*c : (i+1)*c]
		orow := od[i*c : (i+1)*c]
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		s := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			s += e
		}
		inv := 1 / s
		for j := range orow {
			orow[j] *= inv
		}
	}
}

// SoftmaxRowsInto computes the row-wise softmax of a into out (same
// shape), with the max-subtraction trick, parallelized over rows. out
// may alias a. float64 only.
func SoftmaxRowsInto(out, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SoftmaxRowsInto requires a 2-D tensor")
	}
	if a.dtype != Float64 || out.dtype != Float64 {
		panic("tensor: SoftmaxRowsInto requires float64 tensors")
	}
	checkSame("SoftmaxRowsInto", out, a)
	r, c := a.shape[0], a.shape[1]
	// ~3 passes over the row, one of them math.Exp.
	cost := 24 * c
	if shouldPar(r, cost) {
		od, ad := out.data, a.data
		ParallelFor(r, cost, func(lo, hi int) { softmaxRows(od, ad, c, lo, hi) })
	} else {
		softmaxRows(out.data, a.data, c, 0, r)
	}
	return out
}

// TransposeInto writes the transpose of the 2-D float64 tensor a into out
// (shape (C,R)). out must not alias a.
func TransposeInto(out, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: TransposeInto requires a 2-D tensor")
	}
	if a.dtype != Float64 || out.dtype != Float64 {
		panic("tensor: TransposeInto requires float64 tensors")
	}
	r, c := a.shape[0], a.shape[1]
	if len(out.shape) != 2 || out.shape[0] != c || out.shape[1] != r {
		panic("tensor: TransposeInto output shape mismatch")
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.data[j*r+i] = a.data[i*c+j]
		}
	}
	return out
}

// ArgmaxRowsInto fills dst with the per-row argmax of a 2-D float64
// tensor, growing dst only when its capacity is insufficient, and
// returns it.
func (t *Tensor) ArgmaxRowsInto(dst []int) []int {
	if len(t.shape) != 2 {
		panic("tensor: ArgmaxRowsInto requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	if cap(dst) < r {
		dst = make([]int, r)
	}
	dst = dst[:r]
	for i := 0; i < r; i++ {
		row := t.data[i*c : (i+1)*c]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		dst[i] = bi
	}
	return dst
}
