package tensor

import "math"

// Into-variants of the allocating elementwise/reduction ops: each computes
// the same result as its namesake with identical floating-point operation
// order, but writes into caller-provided (typically Workspace-pooled)
// storage instead of allocating. The allocating forms delegate here, so
// the two paths share one kernel and stay bitwise identical by
// construction — the contract the workspace-pooled training path is
// verified against.
//
// Naming convention: Out-of-place op Foo(a, b) gains FooInto(out, a, b);
// out must have the correct shape and is fully overwritten (no need to
// zero it first unless documented). out may not alias an input unless the
// specific op notes it is safe.

// AddInto sets out = a+b elementwise. out may alias a or b.
func AddInto(out, a, b *Tensor) *Tensor {
	checkSame("AddInto", a, b)
	checkSame("AddInto", out, a)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// SubInto sets out = a-b elementwise. out may alias a or b.
func SubInto(out, a, b *Tensor) *Tensor {
	checkSame("SubInto", a, b)
	checkSame("SubInto", out, a)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// MulInto sets out = a*b elementwise (Hadamard). out may alias a or b.
func MulInto(out, a, b *Tensor) *Tensor {
	checkSame("MulInto", a, b)
	checkSame("MulInto", out, a)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// DivInto sets out = a/b elementwise. out may alias a or b.
func DivInto(out, a, b *Tensor) *Tensor {
	checkSame("DivInto", a, b)
	checkSame("DivInto", out, a)
	for i := range a.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// ApplyInto sets out[i] = f(a[i]). out may alias a.
func ApplyInto(out, a *Tensor, f func(float64) float64) *Tensor {
	checkSame("ApplyInto", out, a)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// SumAxis0Into reduces a 2-D tensor over rows into out (shape (C)),
// overwriting out.
func SumAxis0Into(out, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SumAxis0Into requires a 2-D tensor")
	}
	if out.Size() != a.shape[1] {
		panic("tensor: SumAxis0Into output size mismatch")
	}
	r, c := a.shape[0], a.shape[1]
	for j := range out.data {
		out.data[j] = 0
	}
	for i := 0; i < r; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// SoftmaxRowsInto computes the row-wise softmax of a into out (same
// shape), with the max-subtraction trick. out may alias a.
func SoftmaxRowsInto(out, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SoftmaxRowsInto requires a 2-D tensor")
	}
	checkSame("SoftmaxRowsInto", out, a)
	r, c := a.shape[0], a.shape[1]
	for i := 0; i < r; i++ {
		row := a.data[i*c : (i+1)*c]
		orow := out.data[i*c : (i+1)*c]
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		s := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			s += e
		}
		inv := 1 / s
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// TransposeInto writes the transpose of the 2-D tensor a into out (shape
// (C,R)). out must not alias a.
func TransposeInto(out, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: TransposeInto requires a 2-D tensor")
	}
	r, c := a.shape[0], a.shape[1]
	if len(out.shape) != 2 || out.shape[0] != c || out.shape[1] != r {
		panic("tensor: TransposeInto output shape mismatch")
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.data[j*r+i] = a.data[i*c+j]
		}
	}
	return out
}

// ArgmaxRowsInto fills dst with the per-row argmax of a 2-D tensor,
// growing dst only when its capacity is insufficient, and returns it.
func (t *Tensor) ArgmaxRowsInto(dst []int) []int {
	if len(t.shape) != 2 {
		panic("tensor: ArgmaxRowsInto requires a 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	if cap(dst) < r {
		dst = make([]int, r)
	}
	dst = dst[:r]
	for i := 0; i < r; i++ {
		row := t.data[i*c : (i+1)*c]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		dst[i] = bi
	}
	return dst
}
