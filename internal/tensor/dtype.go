package tensor

import "fmt"

// DType identifies a tensor's element storage type. Float64 is the zero
// value and the default throughout the repository; Float32 halves memory
// and bandwidth for serving-oriented paths while every kernel still
// accumulates in float64 (see kernel.go for the rounding contract).
type DType uint8

const (
	Float64 DType = iota
	Float32
)

func (d DType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	}
	return fmt.Sprintf("DType(%d)", uint8(d))
}

// NewOf allocates a zero-filled tensor of the given dtype and shape.
// NewOf(Float64, ...) is identical to New.
func NewOf(dt DType, shape ...int) *Tensor {
	if dt == Float64 {
		return New(shape...)
	}
	if dt != Float32 {
		panic("tensor: unknown dtype")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Message omits the shape so the variadic slice does not
			// escape (see New).
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data32: make([]float32, n), dtype: Float32}
}

// FromSlice32 wraps data into a float32 tensor with the given shape. The
// slice is used directly (not copied).
func FromSlice32(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data32: data, dtype: Float32}
}

// DType returns the tensor's element type.
func (t *Tensor) DType() DType { return t.dtype }

// Data32 exposes the underlying flat float32 buffer. Mutating it mutates
// the tensor. Panics on a float64 tensor.
func (t *Tensor) Data32() []float32 {
	if t.dtype != Float32 {
		panic("tensor: Data32 on a float64 tensor (use Data)")
	}
	return t.data32
}

// Convert returns a new tensor holding t's values in dtype dt — always a
// deep copy, even when dt == t.DType(). Narrowing to float32 rounds each
// element once; widening is exact.
func (t *Tensor) Convert(dt DType) *Tensor {
	out := NewOf(dt, t.shape...)
	switch {
	case dt == t.dtype && dt == Float64:
		copy(out.data, t.data)
	case dt == t.dtype:
		copy(out.data32, t.data32)
	case dt == Float32:
		for i, v := range t.data {
			out.data32[i] = float32(v)
		}
	default:
		for i, v := range t.data32 {
			out.data[i] = float64(v)
		}
	}
	return out
}
