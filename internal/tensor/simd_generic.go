//go:build !amd64

package tensor

// useAVX is false off amd64; the portable math.FMA kernels (exactly
// rounded everywhere, with a software fallback where the hardware lacks
// FMA) keep results bit-identical across architectures.
var useAVX = false

func gemm4x8(k int, ap, bp, c []float64, ldc int) {
	gemm4x8Go(k, ap, bp, c, ldc)
}

func axpyFMA(alpha float64, x, y []float64) {
	axpyFMAGo(alpha, x, y)
}

func vecAdd(dst, a, b []float64)                 { vecAddGo(dst, a, b) }
func vecMul(dst, a, b []float64)                 { vecMulGo(dst, a, b) }
func vecMax(dst, a, b []float64)                 { vecMaxGo(dst, a, b) }
func vecMin(dst, a, b []float64)                 { vecMinGo(dst, a, b) }
func vecScale(dst, a []float64, s float64)       { vecScaleGo(dst, a, s) }
func vecAxpyPlain(alpha float64, x, y []float64) { vecAxpyPlainGo(alpha, x, y) }
func vecSum(x []float64) float64                 { return vecSumGo(x) }
func vecReLU(dst, a []float64)                   { vecReLUGo(dst, a) }
