//go:build !amd64

package tensor

// useAVX is false off amd64; the portable math.FMA kernels (exactly
// rounded everywhere, with a software fallback where the hardware lacks
// FMA) keep results bit-identical across architectures.
var useAVX = false

func gemm4x8(k int, ap, bp, c []float64, ldc int) {
	gemm4x8Go(k, ap, bp, c, ldc)
}

func axpyFMA(alpha float64, x, y []float64) {
	axpyFMAGo(alpha, x, y)
}
