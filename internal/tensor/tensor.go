// Package tensor implements a small dense-tensor library used as the
// numerical substrate for the neural-network and SVM packages.
//
// Tensors are row-major, contiguous, float64. The package provides the
// BLAS-like kernels (blocked parallel matmul, axpy, elementwise ops),
// im2col-based convolution helpers, and axis reductions that the rest of
// the repository builds on. It deliberately avoids clever stride tricks:
// every tensor owns its data, which keeps the distributed-training code
// (which serializes gradients into flat buffers) simple and predictable.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major, contiguous n-dimensional array. Exactly
// one of data/data32 is in use, selected by dtype (Float64 is the zero
// value and the default).
type Tensor struct {
	shape  []int
	data   []float64
	data32 []float32
	dtype  DType
	// wsIdx is the tensor's slot in its owning Workspace's live-borrow
	// list while borrowed (Workspace.Get), -1 once released. Tensors that
	// never passed through a workspace leave it at the zero value; Put
	// validates against the live list, so the field never misfires.
	wsIdx int
}

// New allocates a zero-filled tensor with the given shape. A scalar may be
// represented by an empty shape. Panics on negative dimensions.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// The message deliberately omits the full shape: formatting it
			// would make the variadic slice escape, putting a heap
			// allocation on every New/Workspace.Get call site.
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data into a tensor with the given shape. The slice is
// used directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones allocates a tensor filled with 1.
func Ones(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = 1
	}
	return t
}

// Full allocates a tensor filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn fills a new tensor with samples from N(0, std²) drawn from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new tensor with samples from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of axes.
func (t *Tensor) NDim() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	if t.dtype == Float32 {
		return len(t.data32)
	}
	return len(t.data)
}

// Data exposes the underlying flat buffer. Mutating it mutates the
// tensor. Panics on a float32 tensor (use Data32).
func (t *Tensor) Data() []float64 {
	if t.dtype != Float64 {
		panic("tensor: Data on a float32 tensor (use Data32)")
	}
	return t.data
}

// At returns the element at the given multi-index (widened to float64
// for a float32 tensor).
func (t *Tensor) At(idx ...int) float64 {
	off := t.offset(idx)
	if t.dtype == Float32 {
		return float64(t.data32[off])
	}
	return t.data[off]
}

// Set stores v at the given multi-index (rounded once for float32).
func (t *Tensor) Set(v float64, idx ...int) {
	off := t.offset(idx)
	if t.dtype == Float32 {
		t.data32[off] = float32(v)
		return
	}
	t.data[off] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy (same dtype).
func (t *Tensor) Clone() *Tensor {
	c := NewOf(t.dtype, t.shape...)
	copy(c.data, t.data)
	copy(c.data32, t.data32)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal volume and
// dtypes must match (use Convert to change dtype).
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.dtype != src.dtype {
		panic("tensor: CopyFrom dtype mismatch (use Convert)")
	}
	if t.Size() != src.Size() {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
	copy(t.data32, src.data32)
}

// Reshape returns a view-like tensor sharing data with t but with a new
// shape of equal volume. One dimension may be -1 (inferred).
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	out := append([]int(nil), shape...)
	size := t.Size()
	if infer >= 0 {
		// Messages omit the requested shape so the variadic slice does not
		// escape (see New); t.shape still identifies the tensor.
		if n == 0 || size%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer Reshape dim for %v", t.shape))
		}
		out[infer] = size / n
		n *= out[infer]
	}
	if n != size {
		panic(fmt.Sprintf("tensor: Reshape volume %d mismatch for %v", n, t.shape))
	}
	return &Tensor{shape: out, data: t.data, data32: t.data32, dtype: t.dtype}
}

// Fill sets every element to v (rounded once per element for float32).
func (t *Tensor) Fill(v float64) {
	if t.dtype == Float32 {
		v32 := float32(v)
		for i := range t.data32 {
			t.data32[i] = v32
		}
		return
	}
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	if t.dtype == Float32 {
		for i := range t.data32 {
			t.data32[i] = 0
		}
		return
	}
	for i := range t.data {
		t.data[i] = 0
	}
}

// Row returns a view of row r of a 2-D float64 tensor as a flat slice.
func (t *Tensor) Row(r int) []float64 {
	if len(t.shape) != 2 || t.dtype != Float64 {
		panic("tensor: Row requires a 2-D float64 tensor")
	}
	c := t.shape[1]
	return t.data[r*c : (r+1)*c]
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether a and b have the same shape, the same dtype,
// and all elements within atol absolute tolerance (float32 elements are
// compared after exact widening).
func AllClose(a, b *Tensor, atol float64) bool {
	if !SameShape(a, b) || a.dtype != b.dtype {
		return false
	}
	if a.dtype == Float32 {
		for i := range a.data32 {
			if math.Abs(float64(a.data32[i])-float64(b.data32[i])) > atol {
				return false
			}
		}
		return true
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > atol {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	if t.dtype == Float32 {
		n := len(t.data32)
		if n > 6 {
			n = 6
		}
		return fmt.Sprintf("Tensor%v%v…", t.shape, t.data32[:n])
	}
	n := len(t.data)
	if n > 6 {
		n = 6
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}
