package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the SIMD vector-op layer: every op must be bitwise
// identical to its scalar reference across remainder lengths (the
// loop8/tail4/tail1 edges), special values (NaN, ±Inf, ±0, denormals),
// the asm-vs-Go useAVX flip, and — for the parallelized entry points —
// any worker count.

// vecLens hits every combination of loop8/tail4/tail1 residues plus
// sizes large enough to parallelize at grain 1024.
var vecLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17,
	23, 31, 32, 33, 63, 64, 100, 255, 1024, 4097, 10000}

// fillSpecial fills x with a mix of normal draws and special values, at
// deterministic but varied positions.
func fillSpecial(rng *rand.Rand, x []float64) {
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0, 5e-324, -5e-324, 1.5, -1.5,
	}
	for i := range x {
		if rng.Intn(4) == 0 {
			x[i] = specials[rng.Intn(len(specials))]
		} else {
			x[i] = rng.NormFloat64()
		}
	}
}

func bitsEq(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// bitsEqNaN is bitsEq except that any NaN matches any NaN. The
// arithmetic ops (add/mul/scale/axpy/sum) are compared with this: when
// BOTH operands of an IEEE add/mul are NaN the hardware propagates the
// first source's payload, and the Go compiler does not pin operand order
// for `+`/`*` across separately compiled functions — so NaN payload
// identity between two scalar spellings of the same loop is not a
// property even without SIMD. NaN-ness itself (and every non-NaN bit
// pattern, including ±0 and ±Inf) must still match exactly. The
// branch-based ops (max/min/relu) never do NaN arithmetic and are held
// to full bitwise identity.
func bitsEqNaN(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) &&
			!(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return i, false
		}
	}
	return 0, true
}

// scalar references, written as the historical loops (not calls into the
// vec layer) so the test does not depend on what it verifies.
func refAdd(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func refMul(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

func refMax(dst, a, b []float64) {
	for i := range dst {
		if b[i] > a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

func refMin(dst, a, b []float64) {
	for i := range dst {
		if b[i] < a[i] {
			dst[i] = b[i]
		} else {
			dst[i] = a[i]
		}
	}
}

func refScale(dst, a []float64, s float64) {
	for i := range dst {
		dst[i] = a[i] * s
	}
}

func refAxpy(dst []float64, alpha float64, x []float64) {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

func refSum4(x []float64) float64 {
	var l0, l1, l2, l3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		l0 += x[i]
		l1 += x[i+1]
		l2 += x[i+2]
		l3 += x[i+3]
	}
	s := (l0 + l2) + (l1 + l3)
	for ; i < len(x); i++ {
		s += x[i]
	}
	return s
}

func refReLU(dst, a []float64) {
	for i, v := range a {
		if v <= 0 {
			dst[i] = 0
		} else {
			dst[i] = v
		}
	}
}

// forEachSIMDMode runs fn under both useAVX settings (the flip is a no-op
// off amd64 or on hosts without AVX2, where useAVX is already false).
func forEachSIMDMode(t *testing.T, fn func(t *testing.T)) {
	orig := useAVX
	t.Cleanup(func() { useAVX = orig })
	for _, avx := range []bool{orig, false} {
		useAVX = avx
		t.Run(map[bool]string{true: "avx", false: "go"}[avx], fn)
	}
	useAVX = orig
}

func TestVecOpsBitwiseVsScalar(t *testing.T) {
	w, g := Workers(), loadCfg().grain
	t.Cleanup(func() { Configure(WithWorkers(w), WithGrain(g)) })
	Configure(WithWorkers(4), WithGrain(1024))

	forEachSIMDMode(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for _, n := range vecLens {
			a := make([]float64, n)
			b := make([]float64, n)
			fillSpecial(rng, a)
			fillSpecial(rng, b)
			got, want := make([]float64, n), make([]float64, n)

			type binCase struct {
				name string
				vec  func(dst, a, b []float64)
				ref  func(dst, a, b []float64)
				cmp  func(a, b []float64) (int, bool)
			}
			for _, tc := range []binCase{
				{"VecAddInto", VecAddInto, refAdd, bitsEqNaN},
				{"VecMulInto", VecMulInto, refMul, bitsEqNaN},
				{"VecMaxInto", VecMaxInto, refMax, bitsEq},
				{"VecMinInto", VecMinInto, refMin, bitsEq},
			} {
				tc.vec(got, a, b)
				tc.ref(want, a, b)
				if i, ok := tc.cmp(got, want); !ok {
					t.Fatalf("%s n=%d differs at %d: got %x want %x (a=%v b=%v)",
						tc.name, n, i, math.Float64bits(got[i]), math.Float64bits(want[i]), a[i], b[i])
				}
				// Aliased forms: dst==a and dst==b.
				ga := append([]float64(nil), a...)
				tc.vec(ga, ga, b)
				if i, ok := tc.cmp(ga, want); !ok {
					t.Fatalf("%s n=%d dst==a differs at %d", tc.name, n, i)
				}
				gb := append([]float64(nil), b...)
				tc.vec(gb, a, gb)
				if i, ok := tc.cmp(gb, want); !ok {
					t.Fatalf("%s n=%d dst==b differs at %d", tc.name, n, i)
				}
			}

			for _, s := range []float64{0.25, -1.5, 0, math.NaN()} {
				VecScaleInto(got, a, s)
				refScale(want, a, s)
				if i, ok := bitsEqNaN(got, want); !ok {
					t.Fatalf("VecScaleInto n=%d s=%v differs at %d", n, s, i)
				}
			}

			for _, alpha := range []float64{0.3, -2.25, math.Inf(1)} {
				copy(got, b)
				copy(want, b)
				AxpyInto(got, alpha, a)
				refAxpy(want, alpha, a)
				if i, ok := bitsEqNaN(got, want); !ok {
					t.Fatalf("AxpyInto n=%d alpha=%v differs at %d: got %x want %x",
						n, alpha, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}

			if gs, ws := VecSum(a), refSum4(a); math.Float64bits(gs) != math.Float64bits(ws) &&
				!(math.IsNaN(gs) && math.IsNaN(ws)) {
				t.Fatalf("VecSum n=%d got %x want %x", n, math.Float64bits(gs), math.Float64bits(ws))
			}

			VecReLUSlice(got, a)
			refReLU(want, a)
			if i, ok := bitsEq(got, want); !ok {
				t.Fatalf("relu n=%d differs at %d: a=%v got %v want %v", n, i, a[i], got[i], want[i])
			}
		}
	})
}

// VecReLUSlice adapts the internal slice relu kernel for the test (the
// exported ReLUInto takes tensors).
func VecReLUSlice(dst, a []float64) {
	if len(a) < len(dst) {
		panic("tensor: VecReLUSlice input shorter than dst")
	}
	vecReLU(dst, a[:len(dst)])
}

// TestVecOpsWorkerInvariance pins that the parallelized vector ops return
// bit-identical results at every worker count — the property the mpi
// collectives' bitwise-equivalence guarantees inherit.
func TestVecOpsWorkerInvariance(t *testing.T) {
	w, g := Workers(), loadCfg().grain
	t.Cleanup(func() { Configure(WithWorkers(w), WithGrain(g)) })

	rng := rand.New(rand.NewSource(11))
	const n = 50000
	a := make([]float64, n)
	b := make([]float64, n)
	fillSpecial(rng, a)
	fillSpecial(rng, b)

	type result struct{ add, mul, max, scale, axpy, sigmoid []float64 }
	run := func(workers int) result {
		Configure(WithWorkers(workers), WithGrain(1024))
		r := result{
			add: make([]float64, n), mul: make([]float64, n), max: make([]float64, n),
			scale: make([]float64, n), axpy: make([]float64, n), sigmoid: make([]float64, n),
		}
		VecAddInto(r.add, a, b)
		VecMulInto(r.mul, a, b)
		VecMaxInto(r.max, a, b)
		VecScaleInto(r.scale, a, 0.125)
		copy(r.axpy, b)
		AxpyInto(r.axpy, -0.75, a)
		at := New(n)
		copy(at.Data(), a)
		st := New(n)
		SigmoidInto(st, at)
		copy(r.sigmoid, st.Data())
		return r
	}

	base := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		for name, pair := range map[string][2][]float64{
			"add": {base.add, got.add}, "mul": {base.mul, got.mul},
			"max": {base.max, got.max}, "scale": {base.scale, got.scale},
			"axpy": {base.axpy, got.axpy}, "sigmoid": {base.sigmoid, got.sigmoid},
		} {
			if i, ok := bitsEq(pair[0], pair[1]); !ok {
				t.Fatalf("%s differs between 1 and %d workers at %d", name, workers, i)
			}
		}
	}
}

// TestActivationIntoMatchesApply pins the direct activation kernels
// against the historical ApplyInto closures, including the float32
// widening path.
func TestActivationIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 7, 64, 1000} {
		a := Randn(rng, 1, n)
		// Poison a few entries with specials.
		fillSpecial(rand.New(rand.NewSource(int64(n))), a.Data()[:n/2+1])

		gotS, wantS := New(n), New(n)
		SigmoidInto(gotS, a)
		ApplyInto(wantS, a, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
		if !bitEqual64(gotS, wantS) {
			t.Fatalf("SigmoidInto n=%d differs from ApplyInto", n)
		}

		gotT, wantT := New(n), New(n)
		TanhInto(gotT, a)
		ApplyInto(wantT, a, math.Tanh)
		if !bitEqual64(gotT, wantT) {
			t.Fatalf("TanhInto n=%d differs from ApplyInto", n)
		}

		gotR, wantR := New(n), New(n)
		ReLUInto(gotR, a)
		ApplyInto(wantR, a, func(v float64) float64 {
			if v <= 0 {
				return 0
			}
			return v
		})
		if !bitEqual64(gotR, wantR) {
			t.Fatalf("ReLUInto n=%d differs from scalar branch", n)
		}

		a32 := NewOf(Float32, n)
		for i := range a32.Data32() {
			a32.Data32()[i] = float32(rng.NormFloat64())
		}
		got32, want32 := NewOf(Float32, n), NewOf(Float32, n)
		SigmoidInto(got32, a32)
		ApplyInto(want32, a32, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
		if !bitEqual32(got32, want32) {
			t.Fatalf("SigmoidInto float32 n=%d differs from ApplyInto", n)
		}
	}
}

// TestVecSumDeterministicAcrossModes pins that VecSum's fixed 4-lane
// order gives one answer on the asm path, the Go path, and regardless of
// worker configuration (it is serial by contract).
func TestVecSumDeterministicAcrossModes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := make([]float64, 12345)
	for i := range x {
		x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
	}
	want := refSum4(x)
	orig := useAVX
	t.Cleanup(func() { useAVX = orig })
	for _, avx := range []bool{true, false} {
		useAVX = avx && orig
		if got := VecSum(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("VecSum (avx=%v) got %x want %x", useAVX, math.Float64bits(got), math.Float64bits(want))
		}
	}
}
