// Package perfmodel derives time-to-solution and energy for workloads
// mapped onto MSA modules. It combines a roofline-style node model
// (compute- vs memory-bound), an Amdahl/communication scaling model, and
// the LogP-style collective cost model from the mpi package.
//
// The experiments use it in two ways: (i) to project measured small-scale
// results to the paper's scales (96/128 GPUs for the ResNet-50 case study,
// E3/E5), and (ii) to quantify the MSA's headline claim that running each
// part of an application on matching hardware improves time-to-solution
// and energy over any monolithic choice (E13).
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/msa"
)

// Class labels a workload with the application-archetype of Fig. 2.
type Class string

// Workload classes as discussed in the paper's Fig. 2 and Section I.
const (
	ClassSimulation  Class = "simulation"    // iterative numerics, strong comm
	ClassHPDA        Class = "hpda"          // data analytics, memory-bound
	ClassDLTraining  Class = "dl-training"   // dense matmul, GPU-friendly
	ClassDLInference Class = "dl-inference"  // lighter compute, scale-out
	ClassLowScale    Class = "low-scalable"  // high data management needs
	ClassHighScale   Class = "high-scalable" // regular comm patterns
)

// Workload is a resource-demand description of one application phase.
type Workload struct {
	Name  string
	Class Class
	// Flops is total floating-point work for the phase.
	Flops float64
	// Bytes is total main-memory traffic for the phase (roofline).
	Bytes float64
	// ParallelFrac is the Amdahl parallel fraction in [0,1].
	ParallelFrac float64
	// CommElems is the allreduce payload (float64 elements) exchanged per
	// step when run distributed; Steps is how many such steps occur.
	CommElems int
	Steps     int
	// PrefersGPU marks workloads whose kernels run on accelerators when
	// available (DL training/inference).
	PrefersGPU bool
	// MemoryGB is the working-set size; modules whose nodes cannot hold
	// it per node are penalized with out-of-core traffic.
	MemoryGB float64
}

// Efficiency is the fraction of peak a workload class achieves on a given
// engine; these are the standard sustained-vs-peak derates used in system
// sizing (dense DL kernels run near peak, sparse analytics far from it).
func Efficiency(c Class, onGPU bool) float64 {
	switch c {
	case ClassDLTraining:
		if onGPU {
			// Sustained fraction of *tensor-core* peak for ResNet-class
			// training (≈1400 img/s on one A100 at mixed precision).
			return 0.15
		}
		return 0.20
	case ClassDLInference:
		if onGPU {
			return 0.35
		}
		return 0.25
	case ClassSimulation:
		if onGPU {
			return 0.15
		}
		return 0.30
	case ClassHPDA, ClassLowScale:
		if onGPU {
			return 0.05
		}
		return 0.10
	case ClassHighScale:
		if onGPU {
			return 0.25
		}
		return 0.30
	default:
		return 0.10
	}
}

// NodeTime returns the single-node execution time (seconds) of w on node
// spec n: the roofline max of compute time and memory-traffic time, with
// an out-of-core penalty when the working set exceeds node DRAM.
func NodeTime(w Workload, n msa.NodeSpec) float64 {
	useGPU := w.PrefersGPU && n.GPUs() > 0
	var peakFlops float64
	if useGPU {
		for _, a := range n.Accels {
			if a.Spec.Class == msa.AccelGPU {
				peak := a.Spec.FP32TFlops
				if w.Class == ClassDLTraining || w.Class == ClassDLInference {
					if a.Spec.TensorTFlop > 0 {
						peak = a.Spec.TensorTFlop
					}
				}
				peakFlops += float64(a.Count) * peak * 1e12
			}
		}
	} else {
		peakFlops = n.CPUPeakGFlops() * 1e9
	}
	if peakFlops <= 0 {
		return math.Inf(1)
	}
	eff := Efficiency(w.Class, useGPU)
	tCompute := w.Flops / (peakFlops * eff)

	memBW := n.MemBWGBs * 1e9
	if useGPU {
		gbw := 0.0
		for _, a := range n.Accels {
			if a.Spec.Class == msa.AccelGPU {
				gbw += float64(a.Count) * a.Spec.MemBWGBs * 1e9
			}
		}
		if gbw > 0 {
			memBW = gbw
		}
	}
	tMem := w.Bytes / memBW
	t := math.Max(tCompute, tMem)

	// Out-of-core penalty: working set beyond DRAM spills to NVMe (or the
	// SSSM when no NVMe exists) at roughly 1/20 of DRAM bandwidth.
	if w.MemoryGB > n.MemGB && n.MemGB > 0 {
		spill := (w.MemoryGB - n.MemGB) / w.MemoryGB
		t += spill * w.Bytes / (memBW / 20)
	}
	return t
}

// ScaledTime returns execution time of w on `nodes` nodes of spec n joined
// by link l: Amdahl-scaled compute plus per-step allreduce cost.
func ScaledTime(w Workload, n msa.NodeSpec, l msa.Link, nodes int, algo mpi.Algo) float64 {
	if nodes < 1 {
		panic(fmt.Sprintf("perfmodel: nodes must be >=1, got %d", nodes))
	}
	t1 := NodeTime(w, n)
	serial := 1 - w.ParallelFrac
	tCompute := t1 * (serial + w.ParallelFrac/float64(nodes))
	tComm := 0.0
	if nodes > 1 && w.CommElems > 0 && w.Steps > 0 {
		alpha := l.LatencyUS * 1e-6
		beta := 8 / (l.BWGBs * 1e9) // float64 elements
		tComm = float64(w.Steps) * mpi.CollectiveCostModel(algo, nodes, w.CommElems, alpha, beta, gceFactor)
	}
	return tCompute + tComm
}

// gceFactor is how much faster the in-fabric FPGA reduction completes
// compared with an equivalent software exchange (calibrated to the DEEP
// GCE prototype's reported collective speedups).
const gceFactor = 4.0

// Placement is a workload mapped onto a number of nodes of a module.
type Placement struct {
	Module *msa.Module
	Nodes  int
}

// Result is the evaluated cost of a placement.
type Result struct {
	Seconds float64
	Joules  float64
}

// Evaluate runs the model for w on placement p, using the module's own
// interconnect (and GCE when present and beneficial).
func Evaluate(w Workload, p Placement) Result {
	if p.Nodes < 1 || p.Nodes > p.Module.Nodes() {
		panic(fmt.Sprintf("perfmodel: placement of %d nodes on module %s with %d nodes", p.Nodes, p.Module.Name, p.Module.Nodes()))
	}
	spec := computeGroupSpec(p.Module)
	algo := mpi.AlgoRing
	if p.Module.HasGCE {
		algo = mpi.AlgoGCE
	}
	t := ScaledTime(w, spec, p.Module.Interconnect, p.Nodes, algo)
	power := spec.PowerW() * float64(p.Nodes)
	return Result{Seconds: t, Joules: power * t}
}

// ComputeSpec returns the node spec of the module's largest non-service
// group — the partition placements (and the serving tier in
// internal/serve) run on.
func ComputeSpec(m *msa.Module) msa.NodeSpec { return computeGroupSpec(m) }

// InferenceWorkload describes one online-inference request as a
// perfmodel workload: per-sample forward flops and activation/weight
// traffic. Serving derives per-replica service times from it via
// NodeTime (internal/serve.DerivePlan).
func InferenceWorkload(name string, flopsPerSample, bytesPerSample float64) Workload {
	return Workload{
		Name: name, Class: ClassDLInference,
		Flops: flopsPerSample, Bytes: bytesPerSample,
		ParallelFrac: 1, PrefersGPU: true,
	}
}

// computeGroupSpec returns the node spec of the module's largest
// non-service group (the compute partition used for placements).
func computeGroupSpec(m *msa.Module) msa.NodeSpec {
	best := -1
	var spec msa.NodeSpec
	for _, g := range m.Groups {
		if g.Node.Service {
			continue
		}
		if g.Count > best {
			best = g.Count
			spec = g.Node
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("perfmodel: module %s has no compute group", m.Name))
	}
	return spec
}

// BestModule evaluates w on up to maxNodes nodes of every compute module
// in sys and returns the module with the lowest time-to-solution along
// with the per-module results (for the E13 assignment table).
func BestModule(w Workload, sys *msa.System, maxNodes int) (best *msa.Module, all map[string]Result) {
	all = make(map[string]Result)
	bestT := math.Inf(1)
	for _, m := range sys.Modules {
		switch m.Kind {
		case msa.StorageService, msa.NetworkMemory, msa.QuantumModule:
			continue
		}
		nodes := maxNodes
		if nodes > m.Nodes() {
			nodes = m.Nodes()
		}
		r := Evaluate(w, Placement{Module: m, Nodes: nodes})
		all[m.Name] = r
		if r.Seconds < bestT {
			bestT = r.Seconds
			best = m
		}
	}
	return best, all
}

// TwoPhaseApp models the MSA motivating scenario of Fig. 2: an application
// with a low-scalable, data-heavy phase and a highly scalable compute
// phase, with DataGB handed between the phases.
type TwoPhaseApp struct {
	PhaseA Workload // e.g. data management / preprocessing
	PhaseB Workload // e.g. scalable training / simulation
	DataGB float64  // intermediate data passed from A to B
}

// MonolithicTime runs both phases on the same module (nodesA and nodesB
// nodes respectively; no federation transfer needed).
func (app TwoPhaseApp) MonolithicTime(m *msa.Module, nodesA, nodesB int) Result {
	ra := Evaluate(app.PhaseA, Placement{Module: m, Nodes: nodesA})
	rb := Evaluate(app.PhaseB, Placement{Module: m, Nodes: nodesB})
	return Result{Seconds: ra.Seconds + rb.Seconds, Joules: ra.Joules + rb.Joules}
}

// ModularTime runs phase A on ma and phase B on mb, paying a federation
// transfer of DataGB between them (the MSA execution, Fig. 1).
func (app TwoPhaseApp) ModularTime(ma, mb *msa.Module, fed msa.Link, nodesA, nodesB int) Result {
	ra := Evaluate(app.PhaseA, Placement{Module: ma, Nodes: nodesA})
	rb := Evaluate(app.PhaseB, Placement{Module: mb, Nodes: nodesB})
	tXfer := fed.LatencyUS*1e-6 + app.DataGB/fed.BWGBs
	// Transfer energy: both endpoints' node power for the transfer window.
	specA := computeGroupSpec(ma)
	specB := computeGroupSpec(mb)
	eXfer := (specA.PowerW()*float64(nodesA) + specB.PowerW()*float64(nodesB)) * tXfer * 0.5
	return Result{
		Seconds: ra.Seconds + tXfer + rb.Seconds,
		Joules:  ra.Joules + rb.Joules + eXfer,
	}
}
