package perfmodel

import (
	"math"

	"repro/internal/mpi"
	"repro/internal/msa"
)

// DLScaling models Horovod-style data-parallel training of one network on
// p accelerators: per-step local compute (forward+backward over the local
// batch) followed by a gradient allreduce of the model's parameters. It is
// the projection tool for the paper's ResNet-50/BigEarthNet case study
// (96 GPUs initially, 128 in the follow-up by Sedona et al., §III-A).
type DLScaling struct {
	// Params is the number of trainable parameters (gradient elements).
	Params int
	// FlopsPerSample is the forward-pass flop count per sample; backward
	// is charged at 2× forward, the standard estimate.
	FlopsPerSample float64
	// SamplesPerEpoch is the training-set size.
	SamplesPerEpoch int
	// LocalBatch is the per-worker minibatch (weak scaling: global batch
	// grows with workers, as in the paper's Horovod setup).
	LocalBatch int
	// GPU is the accelerator executing the local compute.
	GPU msa.AcceleratorSpec
	// Link joins the workers.
	Link msa.Link
	// Algo is the gradient allreduce algorithm.
	Algo mpi.Algo
	// GradBytes is bytes per gradient element on the wire (4 for fp32,
	// 2 for fp16 compression).
	GradBytes float64
	// HostOverhead is per-step fixed time (data loading, Python/launch
	// overhead) that does not shrink with workers.
	HostOverhead float64
	// Overlap is the fraction of allreduce time hidden behind the backward
	// pass (Horovod issues layer-wise allreduces as gradients become
	// ready, so most communication overlaps compute).
	Overlap float64
}

// ResNet50BigEarthNet returns the case study's configuration: ResNet-50
// (25.6 M parameters, ~3.9 GFlop forward at 120×120×10 multispectral
// input) trained on BigEarthNet (~270k patches per epoch at the paper's
// train split) with per-GPU batch 64 on A100s over InfiniBand HDR.
func ResNet50BigEarthNet() DLScaling {
	return DLScaling{
		Params:          25_600_000,
		FlopsPerSample:  3.9e9,
		SamplesPerEpoch: 269_695,
		LocalBatch:      64,
		GPU:             msa.A100,
		Link:            msa.InfinibandHDR,
		Algo:            mpi.AlgoRing,
		GradBytes:       4,
		HostOverhead:    0.010,
		Overlap:         0.8,
	}
}

// StepsPerEpoch returns optimizer steps per epoch at p workers (weak
// scaling shrinks it).
func (m DLScaling) StepsPerEpoch(p int) int {
	global := m.LocalBatch * p
	return int(math.Ceil(float64(m.SamplesPerEpoch) / float64(global)))
}

// StepTime returns seconds per optimizer step at p workers.
func (m DLScaling) StepTime(p int) float64 {
	eff := Efficiency(ClassDLTraining, true)
	peak := m.GPU.TensorTFlop
	if peak == 0 {
		peak = m.GPU.FP32TFlops
	}
	compute := 3 * m.FlopsPerSample * float64(m.LocalBatch) / (peak * 1e12 * eff)
	comm := 0.0
	if p > 1 {
		alpha := m.Link.LatencyUS * 1e-6
		beta := m.GradBytes / (m.Link.BWGBs * 1e9)
		comm = mpi.CollectiveCostModel(m.Algo, p, m.Params, alpha, beta, gceFactor)
		// Only the non-overlapped tail of the allreduce extends the step.
		comm *= 1 - m.Overlap
	}
	return compute + comm + m.HostOverhead
}

// EpochTime returns seconds per epoch at p workers.
func (m DLScaling) EpochTime(p int) float64 {
	return float64(m.StepsPerEpoch(p)) * m.StepTime(p)
}

// Speedup returns EpochTime(1)/EpochTime(p).
func (m DLScaling) Speedup(p int) float64 {
	return m.EpochTime(1) / m.EpochTime(p)
}

// Efficiency returns parallel efficiency Speedup(p)/p.
func (m DLScaling) ScalingEfficiency(p int) float64 {
	return m.Speedup(p) / float64(p)
}

// ScalingPoint is one row of a scaling study table.
type ScalingPoint struct {
	Workers    int
	EpochSec   float64
	Speedup    float64
	Efficiency float64
	ImgPerSec  float64
}

// ScalingCurve evaluates the model at each worker count.
func (m DLScaling) ScalingCurve(workers []int) []ScalingPoint {
	out := make([]ScalingPoint, len(workers))
	for i, p := range workers {
		et := m.EpochTime(p)
		out[i] = ScalingPoint{
			Workers:    p,
			EpochSec:   et,
			Speedup:    m.Speedup(p),
			Efficiency: m.ScalingEfficiency(p),
			ImgPerSec:  float64(m.SamplesPerEpoch) / et,
		}
	}
	return out
}
