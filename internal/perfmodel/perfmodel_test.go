package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/msa"
)

func dlWorkload() Workload {
	return Workload{
		Name: "train", Class: ClassDLTraining,
		Flops: 1e15, Bytes: 1e12, ParallelFrac: 0.99,
		CommElems: 1_000_000, Steps: 100, PrefersGPU: true, MemoryGB: 32,
	}
}

func simWorkload() Workload {
	return Workload{
		Name: "cfd", Class: ClassSimulation,
		Flops: 1e15, Bytes: 5e12, ParallelFrac: 0.999,
		CommElems: 50_000, Steps: 1000, MemoryGB: 64,
	}
}

func hpdaWorkload() Workload {
	return Workload{
		Name: "spark", Class: ClassHPDA,
		Flops: 1e13, Bytes: 2e13, ParallelFrac: 0.9,
		CommElems: 10_000, Steps: 10, MemoryGB: 300,
	}
}

func TestNodeTimeGPUBeatsCPUForDL(t *testing.T) {
	deep := msa.DEEP()
	w := dlWorkload()
	cpuNode := deep.Module(msa.ClusterModule).Groups[0].Node
	gpuNode := deep.Module(msa.DataAnalytics).Groups[0].Node
	tCPU := NodeTime(w, cpuNode)
	tGPU := NodeTime(w, gpuNode)
	if tGPU >= tCPU {
		t.Fatalf("DL training should be faster on GPU node: cpu=%g gpu=%g", tCPU, tGPU)
	}
}

func TestNodeTimeMemoryBoundWorkload(t *testing.T) {
	// HPDA with huge byte traffic must be bandwidth-limited: doubling
	// bytes must roughly double the time.
	n := msa.DEEP().Module(msa.ClusterModule).Groups[0].Node
	w := hpdaWorkload()
	w.MemoryGB = 1 // avoid spill in this test
	t1 := NodeTime(w, n)
	w.Bytes *= 2
	t2 := NodeTime(w, n)
	if math.Abs(t2/t1-2) > 0.01 {
		t.Fatalf("memory-bound scaling: %g -> %g", t1, t2)
	}
}

func TestNodeTimeOutOfCorePenalty(t *testing.T) {
	n := msa.DEEP().Module(msa.ClusterModule).Groups[0].Node // 192 GB
	w := hpdaWorkload()
	w.MemoryGB = 100
	inCore := NodeTime(w, n)
	w.MemoryGB = 400 // exceeds DRAM → spill penalty
	outCore := NodeTime(w, n)
	if outCore <= inCore {
		t.Fatalf("out-of-core must be slower: %g vs %g", outCore, inCore)
	}
}

func TestNodeTimeInfiniteWithoutEngine(t *testing.T) {
	w := dlWorkload()
	empty := msa.NodeSpec{} // no CPU cores, no GPU
	if !math.IsInf(NodeTime(w, empty), 1) {
		t.Fatal("no engine should mean infinite time")
	}
}

func TestScaledTimeMonotonicUntilCommBound(t *testing.T) {
	deep := msa.DEEP()
	m := deep.Module(msa.BoosterModule)
	w := simWorkload()
	spec := m.Groups[0].Node
	t1 := ScaledTime(w, spec, m.Interconnect, 1, mpi.AlgoRing)
	t8 := ScaledTime(w, spec, m.Interconnect, 8, mpi.AlgoRing)
	t64 := ScaledTime(w, spec, m.Interconnect, 64, mpi.AlgoRing)
	if !(t8 < t1 && t64 < t8) {
		t.Fatalf("scaling should help here: %g %g %g", t1, t8, t64)
	}
}

func TestScaledTimePanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaledTime(simWorkload(), msa.NodeSpec{}, msa.Extoll, 0, mpi.AlgoRing)
}

func TestEvaluatePanicsOnOversizedPlacement(t *testing.T) {
	deep := msa.DEEP()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate(simWorkload(), Placement{Module: deep.Module(msa.DataAnalytics), Nodes: 1000})
}

func TestBestModuleAssignsDLToGPUModule(t *testing.T) {
	deep := msa.DEEP()
	best, all := BestModule(dlWorkload(), deep, 16)
	if best == nil {
		t.Fatal("no best module")
	}
	if best.GPUs() == 0 {
		t.Fatalf("DL training assigned to GPU-less module %s (%v)", best.Name, all)
	}
	if len(all) != 3 { // CM, ESB, DAM (storage/NAM/QM excluded)
		t.Fatalf("expected 3 compute modules evaluated, got %d", len(all))
	}
}

func TestBestModuleAssignsSimulationToCPUModule(t *testing.T) {
	deep := msa.DEEP()
	w := simWorkload()
	best, _ := BestModule(w, deep, 16)
	// Simulation has low GPU efficiency; CM or ESB should win over DAM.
	if best.Kind == msa.DataAnalytics {
		t.Fatalf("simulation should not prefer the DAM")
	}
}

// TestMSABeatsMonolithic is the core of experiment E13: a two-phase app
// (data-heavy prep + scalable GPU training) must run faster on the MSA
// split than entirely on either module.
func TestMSABeatsMonolithic(t *testing.T) {
	deep := msa.DEEP()
	cm := deep.Module(msa.ClusterModule)
	esb := deep.Module(msa.BoosterModule)
	app := TwoPhaseApp{
		PhaseA: Workload{Name: "prep", Class: ClassLowScale,
			Flops: 5e13, Bytes: 2e13, ParallelFrac: 0.80, MemoryGB: 100},
		PhaseB: Workload{Name: "train", Class: ClassDLTraining,
			Flops: 5e15, Bytes: 1e12, ParallelFrac: 0.995,
			CommElems: 25_600_000, Steps: 500, PrefersGPU: true, MemoryGB: 30},
		DataGB: 50,
	}
	onCM := app.MonolithicTime(cm, 8, 32)
	onESB := app.MonolithicTime(esb, 8, 32)
	split := app.ModularTime(cm, esb, deep.Federation, 8, 32)
	if !(split.Seconds < onCM.Seconds && split.Seconds < onESB.Seconds) {
		t.Fatalf("MSA split should win: split=%g cm=%g esb=%g", split.Seconds, onCM.Seconds, onESB.Seconds)
	}
	if split.Joules >= onCM.Joules {
		t.Fatalf("MSA split should also save energy vs CPU-only: %g vs %g", split.Joules, onCM.Joules)
	}
}

func TestEfficiencyTableSane(t *testing.T) {
	for _, c := range []Class{ClassSimulation, ClassHPDA, ClassDLTraining, ClassDLInference, ClassLowScale, ClassHighScale} {
		for _, gpu := range []bool{false, true} {
			e := Efficiency(c, gpu)
			if e <= 0 || e > 1 {
				t.Fatalf("efficiency out of range for %s gpu=%v: %f", c, gpu, e)
			}
		}
	}
	if Efficiency(Class("unknown"), false) <= 0 {
		t.Fatal("unknown class needs a fallback efficiency")
	}
	// Efficiencies are relative to different peaks, so the meaningful check
	// is delivered throughput: one A100 (including host overhead) should
	// sustain on the order of 1000–3000 ResNet-50 images/s.
	m := ResNet50BigEarthNet()
	imgPerSec := float64(m.LocalBatch) / m.StepTime(1)
	if imgPerSec < 1000 || imgPerSec > 3000 {
		t.Fatalf("calibration off: %f img/s on one A100", imgPerSec)
	}
}

// --- DL scaling model (E3/E5) ---

func TestResNetScalingShape(t *testing.T) {
	m := ResNet50BigEarthNet()
	curve := m.ScalingCurve([]int{1, 2, 4, 8, 16, 32, 64, 96, 128})
	// Speed-up must be monotonically increasing over this range (the paper
	// reports further gains from 96 to 128 GPUs).
	for i := 1; i < len(curve); i++ {
		if curve[i].Speedup <= curve[i-1].Speedup {
			t.Fatalf("speedup not increasing at p=%d: %v", curve[i].Workers, curve)
		}
	}
	// Near-linear at small scale...
	if curve[3].Efficiency < 0.85 { // p=8
		t.Fatalf("efficiency at 8 workers too low: %f", curve[3].Efficiency)
	}
	// ...and still respectable at 128 (the paper's headline: significant
	// speed-up at 96-128 GPUs).
	s128 := curve[len(curve)-1]
	if s128.Speedup < 60 {
		t.Fatalf("speedup at 128 too low: %f", s128.Speedup)
	}
	if s128.Efficiency > 1.0001 {
		t.Fatalf("superlinear speedup is a model bug: %f", s128.Efficiency)
	}
}

func TestStepsPerEpochWeakScaling(t *testing.T) {
	m := ResNet50BigEarthNet()
	if m.StepsPerEpoch(2)*2 < m.StepsPerEpoch(1) {
		t.Fatal("steps per epoch should halve (ceil) when workers double")
	}
	if m.StepsPerEpoch(128) < 1 {
		t.Fatal("steps must stay >= 1")
	}
}

func TestFp16CompressionHelpsAtScale(t *testing.T) {
	m := ResNet50BigEarthNet()
	m16 := m
	m16.GradBytes = 2
	if m16.EpochTime(128) >= m.EpochTime(128) {
		t.Fatal("fp16 gradients must reduce epoch time at 128 workers")
	}
}

func TestGCEAlgoHelpsSmallMessages(t *testing.T) {
	m := ResNet50BigEarthNet()
	m.Link = msa.Extoll
	ring := m
	ring.Algo = mpi.AlgoRing
	gce := m
	gce.Algo = mpi.AlgoGCE
	// With the GCE hardware offload the per-step collective is cheaper.
	if gce.StepTime(64) >= ring.StepTime(64) {
		t.Fatalf("GCE should beat ring here: %g vs %g", gce.StepTime(64), ring.StepTime(64))
	}
}

// Property: epoch time is positive and speedup never exceeds worker count
// (no superlinearity in the model).
func TestScalingModelProperty(t *testing.T) {
	m := ResNet50BigEarthNet()
	f := func(pRaw uint8) bool {
		p := 1 + int(pRaw)%256
		et := m.EpochTime(p)
		if !(et > 0) || math.IsInf(et, 0) || math.IsNaN(et) {
			return false
		}
		return m.Speedup(p) <= float64(p)*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateEnergyConsistent(t *testing.T) {
	deep := msa.DEEP()
	m := deep.Module(msa.DataAnalytics)
	r := Evaluate(dlWorkload(), Placement{Module: m, Nodes: 4})
	wantPower := m.Groups[0].Node.PowerW() * 4
	if math.Abs(r.Joules-wantPower*r.Seconds) > 1e-6*r.Joules {
		t.Fatalf("energy = power × time violated: %g vs %g", r.Joules, wantPower*r.Seconds)
	}
}
